#include "mem/cache.hh"

#include <algorithm>

#include "sim/audit.hh"

namespace gpuwalk::mem {

Cache::Cache(sim::EventQueue &eq, const CacheConfig &cfg,
             MemoryDevice &below)
    : eq_(eq), cfg_(cfg), below_(below), statGroup_(cfg.name)
{
    GPUWALK_ASSERT(cfg_.sizeBytes % (cfg_.lineBytes * cfg_.associativity)
                       == 0,
                   "cache size not divisible by way size");
    numSets_ = cfg_.numSets();
    sets_.assign(numSets_, std::vector<Line>(cfg_.associativity));

    statGroup_.add(hits_);
    statGroup_.add(misses_);
    statGroup_.add(mshrMerges_);
    statGroup_.add(evictions_);
    statGroup_.add(writebacks_);
}

Cache::Line *
Cache::findLine(Addr addr)
{
    auto &set = sets_[setIndex(addr)];
    const Addr tag = tagOf(addr);
    for (auto &line : set) {
        if (line.valid && line.tag == tag)
            return &line;
    }
    return nullptr;
}

void
Cache::installLine(Addr addr, bool dirty)
{
    auto &set = sets_[setIndex(addr)];
    // Prefer an invalid way; otherwise evict true-LRU.
    Line *victim = nullptr;
    for (auto &line : set) {
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim || line.lastUse < victim->lastUse)
            victim = &line;
    }
    if (victim->valid) {
        ++evictions_;
        if (victim->dirty) {
            ++writebacks_;
            MemoryRequest wb;
            wb.addr = (victim->tag * numSets_ + setIndex(addr))
                      * cfg_.lineBytes;
            wb.write = true;
            wb.requester = Requester::GpuData;
            below_.access(std::move(wb));
        }
    }
    victim->tag = tagOf(addr);
    victim->valid = true;
    victim->dirty = dirty;
    victim->lastUse = ++useClock_;
}

void
Cache::access(MemoryRequest req)
{
    const Addr line_addr = req.addr - (req.addr % cfg_.lineBytes);

    if (Line *line = findLine(req.addr)) {
        ++hits_;
        line->lastUse = ++useClock_;
        line->dirty = line->dirty || req.write;
        eq_.scheduleIn(cfg_.hitLatency,
                       [r = std::move(req)]() mutable { r.complete(); });
        return;
    }

    // Miss: merge into an existing MSHR if the line is already inbound.
    auto it = mshrs_.find(line_addr);
    if (it != mshrs_.end()) {
        ++mshrMerges_;
        it->second->anyWrite = it->second->anyWrite || req.write;
        it->second->waiters.push_back(std::move(req));
        return;
    }

    ++misses_;
    Mshr *mshr = mshrPool_.acquire();
    mshr->anyWrite = req.write;
    mshr->waiters.push_back(std::move(req));
    mshrs_.emplace(line_addr, mshr);

    MemoryRequest fill;
    fill.addr = line_addr;
    fill.size = static_cast<unsigned>(cfg_.lineBytes);
    fill.write = false;
    fill.requester = mshr->waiters.front().requester;
    fill.instruction = mshr->waiters.front().instruction;
    fill.wavefront = mshr->waiters.front().wavefront;
    fill.cu = mshr->waiters.front().cu;
    fill.onComplete = [this, line_addr] { handleFill(line_addr); };
    // Tag lookup happens before the fill is sent downstream.
    eq_.scheduleIn(cfg_.tagLatency,
                   [this, f = std::move(fill)]() mutable {
                       below_.access(std::move(f));
                   });
}

void
Cache::handleFill(Addr line_addr)
{
    auto it = mshrs_.find(line_addr);
    GPUWALK_ASSERT(it != mshrs_.end(), "fill without MSHR for ",
                   line_addr);
    Mshr *mshr = it->second;
    mshrs_.erase(it);

    installLine(line_addr, mshr->anyWrite);

    for (auto &w : mshr->waiters) {
        eq_.scheduleIn(cfg_.hitLatency,
                       [r = std::move(w)]() mutable { r.complete(); });
    }
    mshr->waiters.clear();
    mshrPool_.release(mshr);
}

void
Cache::registerInvariants(sim::Auditor &auditor)
{
    auditor.registerInvariant(
        cfg_.name + ".mshrs", [this](sim::AuditContext &ctx) {
            ctx.require(mshrPool_.inUse() == mshrs_.size(),
                        "MSHR pool live count ", mshrPool_.inUse(),
                        " != tracked in-flight lines ", mshrs_.size());
            if (!ctx.final())
                return;
            ctx.require(mshrs_.empty(), mshrs_.size(),
                        " in-flight misses never filled");
            ctx.require(mshrPool_.inUse() == 0, "MSHR pool leaks ",
                        mshrPool_.inUse(), " entries at drain");
        });
}

void
Cache::flushAll()
{
    for (auto &set : sets_) {
        for (auto &line : set) {
            line.valid = false;
            line.dirty = false;
        }
    }
}

} // namespace gpuwalk::mem
