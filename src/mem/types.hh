/**
 * @file
 * Common memory-system types and constants.
 */

#ifndef GPUWALK_MEM_TYPES_HH
#define GPUWALK_MEM_TYPES_HH

#include <cstdint>

namespace gpuwalk::mem {

/** A byte address. Virtual or physical depending on context. */
using Addr = std::uint64_t;

/** Cache line size used throughout the system (Table I). */
constexpr Addr cacheLineSize = 64;

/** Base page size: 4 KB, the paper's translation granularity. */
constexpr Addr pageSize = 4096;

/** log2(pageSize). */
constexpr unsigned pageShift = 12;

/** Rounds @p a down to its cache-line base. */
constexpr Addr lineAlign(Addr a) { return a & ~(cacheLineSize - 1); }

/** Rounds @p a down to its page base. */
constexpr Addr pageAlign(Addr a) { return a & ~(pageSize - 1); }

/** Virtual/physical page number of @p a. */
constexpr Addr pageNumber(Addr a) { return a >> pageShift; }

/**
 * Non-aliasing (ctx, page) composite key: page number in the high
 * bits, the full 16-bit context id in the low 16. The page offset is
 * only 12 bits wide, so packing a 16-bit ASID into it (va_page | ctx)
 * aliases ASIDs >= 4096 into VA bit 12+ — (ctx 4096, page X) would
 * collide with (ctx 0, page X + 0x1000). Shifting by the page number
 * keeps every (ctx, page) pair distinct for the full 48-bit VA range.
 * For a fixed ctx the key is monotone in the page, so ordered-map
 * iteration order is unchanged for single-tenant runs.
 */
constexpr std::uint64_t
pageCtxKey(std::uint16_t ctx, Addr va_page)
{
    return (pageNumber(va_page) << 16) | ctx;
}

/** The page-aligned VA encoded in a pageCtxKey. */
constexpr Addr pageOfKey(std::uint64_t key)
{
    return (key >> 16) << pageShift;
}

/** The context id encoded in a pageCtxKey. */
constexpr std::uint16_t ctxOfKey(std::uint64_t key)
{
    return static_cast<std::uint16_t>(key & 0xFFFF);
}

/** Who generated a memory request; used for stats attribution. */
enum class Requester : std::uint8_t
{
    GpuData,    ///< GPU data-path access (cache fill / writeback)
    PageWalk,   ///< IOMMU page table walker access
    Other,
};

} // namespace gpuwalk::mem

#endif // GPUWALK_MEM_TYPES_HH
