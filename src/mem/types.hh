/**
 * @file
 * Common memory-system types and constants.
 */

#ifndef GPUWALK_MEM_TYPES_HH
#define GPUWALK_MEM_TYPES_HH

#include <cstdint>

namespace gpuwalk::mem {

/** A byte address. Virtual or physical depending on context. */
using Addr = std::uint64_t;

/** Cache line size used throughout the system (Table I). */
constexpr Addr cacheLineSize = 64;

/** Base page size: 4 KB, the paper's translation granularity. */
constexpr Addr pageSize = 4096;

/** log2(pageSize). */
constexpr unsigned pageShift = 12;

/** Rounds @p a down to its cache-line base. */
constexpr Addr lineAlign(Addr a) { return a & ~(cacheLineSize - 1); }

/** Rounds @p a down to its page base. */
constexpr Addr pageAlign(Addr a) { return a & ~(pageSize - 1); }

/** Virtual/physical page number of @p a. */
constexpr Addr pageNumber(Addr a) { return a >> pageShift; }

/** Who generated a memory request; used for stats attribution. */
enum class Requester : std::uint8_t
{
    GpuData,    ///< GPU data-path access (cache fill / writeback)
    PageWalk,   ///< IOMMU page table walker access
    Other,
};

} // namespace gpuwalk::mem

#endif // GPUWALK_MEM_TYPES_HH
