/**
 * @file
 * Channel-backed MemoryDevice adapter: the request side of a
 * domain-crossing memory edge.
 *
 * Components keep talking to a plain mem::MemoryDevice (caches never
 * learn about domains); the adapter forwards each access through a
 * typed request channel and stamps the reply channel the completing
 * device (mem/dram_controller.cc) must respond on. The request hop
 * itself is same-tick — the caller has already paid its own latency
 * (cache tag/hit time) before calling access(), exactly as with
 * direct wiring.
 */

#ifndef GPUWALK_MEM_CHANNEL_PORT_HH
#define GPUWALK_MEM_CHANNEL_PORT_HH

#include "mem/request.hh"
#include "sim/port.hh"

namespace gpuwalk::mem {

/** Forwards access() into a request channel toward the memory domain. */
class ChannelMemoryPort final : public MemoryDevice
{
  public:
    /**
     * @param request Carries requests into the memory domain.
     * @param reply Stamped on each request; the DRAM controller sends
     *        the completed request back through it.
     */
    ChannelMemoryPort(sim::Channel<MemoryRequest> &request,
                      MemoryReplyChannel &reply)
        : request_(request), reply_(reply)
    {}

    void
    access(MemoryRequest req) override
    {
        req.reply = &reply_;
        request_.sendNow(std::move(req));
    }

  private:
    sim::Channel<MemoryRequest> &request_;
    MemoryReplyChannel &reply_;
};

} // namespace gpuwalk::mem

#endif // GPUWALK_MEM_CHANNEL_PORT_HH
