/**
 * @file
 * FR-FCFS memory controller over a multi-channel DDR3 device.
 *
 * Each channel has its own request queue, per-bank row-buffer state,
 * and a shared data bus. Scheduling is First-Ready FCFS with an
 * open-page policy: among issuable requests, row-buffer hits win,
 * then age. This is the conventional baseline the paper assumes for
 * the memory controller (its contribution is upstream, at the IOMMU).
 */

#ifndef GPUWALK_MEM_DRAM_CONTROLLER_HH
#define GPUWALK_MEM_DRAM_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "mem/dram.hh"
#include "mem/request.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace gpuwalk::sim {
class Auditor;
} // namespace gpuwalk::sim

namespace gpuwalk::mem {

/** Timing-accurate (at the FR-FCFS level) DRAM controller. */
class DramController : public MemoryDevice
{
  public:
    DramController(sim::EventQueue &eq, const DramConfig &cfg);

    /** Enqueues a request; completion is signalled via its callback. */
    void access(MemoryRequest req) override;

    /** Statistics group for this controller. */
    sim::StatGroup &stats() { return statGroup_; }

    /** Registers the channel-queue drain invariant. */
    void registerInvariants(sim::Auditor &auditor);

    // Exposed counters for tests and reporting.
    std::uint64_t reads() const { return reads_.value(); }
    std::uint64_t writes() const { return writes_.value(); }
    std::uint64_t rowHits() const { return rowHits_.value(); }
    std::uint64_t rowMisses() const { return rowMisses_.value(); }
    std::uint64_t rowConflicts() const { return rowConflicts_.value(); }
    double avgLatencyTicks() const { return latency_.mean(); }
    std::uint64_t pageWalkAccesses() const { return walkAccesses_.value(); }

  private:
    struct Pending
    {
        MemoryRequest req;
        DramAddress where;
        sim::Tick arrival = 0;
        std::uint64_t seq = 0;
    };

    struct BankState
    {
        bool rowOpen = false;
        std::uint64_t openRow = 0;
        sim::Tick readyAt = 0;   ///< earliest next column command
        sim::Tick activatedAt = 0; ///< for tRAS accounting
        sim::Tick lastIssue = 0;   ///< for refresh row-closing
    };

    /**
     * Applies the lazy refresh model: returns the earliest tick >=
     * @p when at which @p bank (in @p rank) can take a command, and
     * closes its row if a refresh boundary passed since its last use.
     */
    sim::Tick applyRefresh(BankState &bank, unsigned rank,
                           sim::Tick when);

    /**
     * Intrusive drain wake-up, one per channel: re-runs the FR-FCFS
     * scan when the earliest bank constraint clears. At most one is in
     * flight per channel (guarded by scheduled()), replacing the old
     * drainScheduled flag + capturing lambda.
     */
    struct DrainEvent final : sim::Event
    {
        void process() override;

        DramController *ctrl = nullptr;
        unsigned chan = 0;
    };

    struct Channel
    {
        std::deque<Pending> queue;
        std::vector<BankState> banks;
        sim::Tick busFreeAt = 0;
        DrainEvent drain;
    };

    void trySchedule(unsigned chan);
    void issue(Channel &ch, std::size_t idx);

    sim::EventQueue &eq_;
    DramConfig cfg_;
    DramAddressMapper mapper_;
    /** deque: Channel holds an intrusive event, so elements must stay
     *  put (no vector relocation). */
    std::deque<Channel> channels_;
    std::uint64_t nextSeq_ = 0;

    sim::StatGroup statGroup_;
    sim::Counter reads_{"reads", "DRAM read requests"};
    sim::Counter writes_{"writes", "DRAM write requests"};
    sim::Counter rowHits_{"row_hits", "row-buffer hits"};
    sim::Counter rowMisses_{"row_misses", "row-buffer misses (closed)"};
    sim::Counter rowConflicts_{"row_conflicts", "row-buffer conflicts"};
    sim::Counter walkAccesses_{"walk_accesses",
                               "accesses on behalf of page walks"};
    sim::Counter refreshDelays_{"refresh_delays",
                                "commands pushed past a refresh window"};
    sim::Average latency_{"latency", "request latency (ticks)"};
    sim::Average queueDepth_{"queue_depth", "queue depth at arrival"};
};

} // namespace gpuwalk::mem

#endif // GPUWALK_MEM_DRAM_CONTROLLER_HH
