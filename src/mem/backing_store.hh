/**
 * @file
 * Sparse functional memory.
 *
 * Stores real bytes for the fraction of physical memory that needs
 * functional content — primarily the page tables, which the IOMMU's
 * walkers decode entry by entry. Frames are allocated lazily and
 * zero-filled, matching OS behaviour for freshly allocated page-table
 * pages. Storage is slabbed: frames live in fixed-size arrays of 64
 * and a flat index maps frame numbers to slots, so materializing a
 * frame costs one heap allocation per 64 frames rather than one per
 * frame, and the per-PTE-read lookup is a single open-addressed probe.
 */

#ifndef GPUWALK_MEM_BACKING_STORE_HH
#define GPUWALK_MEM_BACKING_STORE_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "mem/types.hh"
#include "sim/flat_map.hh"
#include "sim/logging.hh"

namespace gpuwalk::mem {

/** Sparse, lazily allocated physical memory with functional content. */
class BackingStore
{
  public:
    BackingStore() = default;

    BackingStore(const BackingStore &) = delete;
    BackingStore &operator=(const BackingStore &) = delete;

    /** Reads @p size bytes (1-8, not crossing a frame) at @p addr. */
    std::uint64_t
    read(Addr addr, unsigned size) const
    {
        GPUWALK_ASSERT(size >= 1 && size <= 8, "bad read size ", size);
        GPUWALK_ASSERT(sameFrame(addr, size),
                       "read crosses frame boundary at ", addr);
        const Frame *f = find(pageNumber(addr));
        if (!f)
            return 0;
        std::uint64_t v = 0;
        std::memcpy(&v, f->data() + (addr & (pageSize - 1)), size);
        return v;
    }

    /** Writes @p size bytes (1-8, not crossing a frame) at @p addr. */
    void
    write(Addr addr, std::uint64_t value, unsigned size)
    {
        GPUWALK_ASSERT(size >= 1 && size <= 8, "bad write size ", size);
        GPUWALK_ASSERT(sameFrame(addr, size),
                       "write crosses frame boundary at ", addr);
        Frame &f = findOrCreate(pageNumber(addr));
        std::memcpy(f.data() + (addr & (pageSize - 1)), &value, size);
    }

    /** Reads a 64-bit little-endian word (e.g., a PTE). */
    std::uint64_t read64(Addr addr) const { return read(addr, 8); }

    /** Writes a 64-bit little-endian word. */
    void write64(Addr addr, std::uint64_t v) { write(addr, v, 8); }

    /** Number of frames actually materialized. */
    std::size_t framesAllocated() const { return index_.size(); }

    /** True if the frame containing @p addr has been materialized.
     *  Lets eviction machinery skip saving frames that were never
     *  written (their content is implicitly zero). */
    bool
    contains(Addr addr) const
    {
        return find(pageNumber(addr)) != nullptr;
    }

  private:
    using Frame = std::array<std::uint8_t, pageSize>;

    /** Frames per slab allocation. */
    static constexpr std::size_t slabFrames = 64;

    static bool
    sameFrame(Addr addr, unsigned size)
    {
        return pageNumber(addr) == pageNumber(addr + size - 1);
    }

    const Frame *
    find(Addr frame_number) const
    {
        const auto it = index_.find(frame_number);
        return it == index_.end() ? nullptr : &frameAt(it->second);
    }

    Frame &
    findOrCreate(Addr frame_number)
    {
        const auto [it, inserted] =
            index_.try_emplace(frame_number, std::uint64_t{0});
        if (inserted) {
            const std::size_t slot = nextSlot_++;
            if (slot / slabFrames == slabs_.size()) {
                // Value-initialization zero-fills the whole slab.
                slabs_.push_back(
                    std::make_unique<Frame[]>(slabFrames));
            }
            it->second = slot;
        }
        return const_cast<Frame &>(frameAt(it->second));
    }

    const Frame &
    frameAt(std::uint64_t slot) const
    {
        return slabs_[slot / slabFrames][slot % slabFrames];
    }

    std::vector<std::unique_ptr<Frame[]>> slabs_;
    sim::FlatMap<Addr, std::uint64_t> index_; ///< frame number -> slot
    std::size_t nextSlot_ = 0;
};

} // namespace gpuwalk::mem

#endif // GPUWALK_MEM_BACKING_STORE_HH
