/**
 * @file
 * The request/port abstraction connecting memory-system components.
 */

#ifndef GPUWALK_MEM_REQUEST_HH
#define GPUWALK_MEM_REQUEST_HH

#include <cstdint>
#include <utility>

#include "mem/types.hh"
#include "sim/inline_function.hh"
#include "sim/ticks.hh"

namespace gpuwalk::sim {
template <typename Msg>
class Channel;
} // namespace gpuwalk::sim

namespace gpuwalk::mem {

struct MemoryRequest;

/** Channel carrying completed memory requests back across a domain
 *  boundary (sim/port.hh). */
using MemoryReplyChannel = sim::Channel<MemoryRequest>;

/**
 * An asynchronous memory request.
 *
 * Requests are timing-only for the data path (no payload); functional
 * data (the page tables) lives in the BackingStore and is read
 * separately by the walker once timing completes.
 */
struct MemoryRequest
{
    /** Physical address accessed. */
    Addr addr = 0;

    /** Access size in bytes (whole cache line for fills). */
    unsigned size = cacheLineSize;

    /** True for writes/writebacks. */
    bool write = false;

    /** Originator, for stats. */
    Requester requester = Requester::Other;

    /**
     * Execution context of the access (SIMD instruction ID, wavefront,
     * CU). Zero for requests with no GPU context (writebacks, walks).
     * Plain integers so the memory layer stays independent of the
     * GPU/TLB layers; consumers that need translation context (the
     * virtual-cache bridge) read these.
     */
    std::uint64_t instruction = 0;
    std::uint32_t wavefront = 0;
    std::uint32_t cu = 0;

    /**
     * Invoked exactly once when the access completes. May be empty.
     * Inline-stored (no allocation) for the hot captures; move-only
     * callables — e.g. owning a moved-in request — are fine.
     */
    sim::InlineFunction<void()> onComplete;

    /**
     * When set, the completing device sends the finished request back
     * through this channel instead of invoking onComplete directly, so
     * the callback runs in the requester's domain. Stamped by the
     * request-side channel adapter (mem/channel_port.hh) as the
     * request crosses into the memory domain; null for direct wiring.
     */
    MemoryReplyChannel *reply = nullptr;

    void
    complete()
    {
        if (onComplete) {
            // Move out first so a callback destroying this request is safe.
            auto cb = std::move(onComplete);
            cb();
        }
    }
};

/**
 * Anything that can accept timing memory requests: caches, the DRAM
 * controller, or test stubs.
 */
class MemoryDevice
{
  public:
    virtual ~MemoryDevice() = default;

    /**
     * Accepts @p req. The device takes ownership and will invoke
     * req.onComplete when the access finishes. Devices are assumed to
     * have sufficient internal queueing (bounded in practice by the
     * self-throttling of the upstream components).
     */
    virtual void access(MemoryRequest req) = 0;
};

} // namespace gpuwalk::mem

#endif // GPUWALK_MEM_REQUEST_HH
