/**
 * @file
 * Fault-injecting interposer for the IOMMU↔memory port boundary.
 *
 * Wraps any MemoryDevice (the walk cache or the DRAM controller) and
 * misbehaves on the crossings a FaultInjector selects. Test-only; see
 * sim/fault_injector.hh and tlb/fault_injection.hh for the matching
 * TLB-side adapter.
 */

#ifndef GPUWALK_MEM_FAULT_INJECTION_HH
#define GPUWALK_MEM_FAULT_INJECTION_HH

#include <utility>

#include "mem/request.hh"
#include "sim/event_queue.hh"
#include "sim/fault_injector.hh"

namespace gpuwalk::mem {

/**
 * MemoryDevice decorator applying drop/delay/duplicate faults.
 *
 * - Drop: the request is forwarded with its completion callback
 *   swallowed — memory finishes the access, the requester (a walker's
 *   PTE fetch, a cache fill) waits forever.
 * - Delay: the completion is re-delivered delayTicks later.
 * - Duplicate: a phantom copy of the request (no callback) is
 *   forwarded after the real one.
 */
class FaultyMemoryDevice : public MemoryDevice
{
  public:
    FaultyMemoryDevice(sim::EventQueue &eq, MemoryDevice &below,
                       sim::FaultInjector::Spec spec)
        : eq_(eq), below_(below), injector_(spec)
    {}

    void
    access(MemoryRequest req) override
    {
        switch (injector_.decide()) {
          case sim::FaultKind::Drop:
            req.onComplete = {};
            break;
          case sim::FaultKind::Delay: {
            auto inner = std::move(req.onComplete);
            req.onComplete = [this, cb = std::move(inner)]() mutable {
                eq_.scheduleIn(injector_.spec().delayTicks,
                               [cb = std::move(cb)]() mutable { cb(); });
            };
            break;
          }
          case sim::FaultKind::Duplicate: {
            MemoryRequest phantom;
            phantom.addr = req.addr;
            phantom.size = req.size;
            phantom.write = req.write;
            phantom.requester = req.requester;
            phantom.instruction = req.instruction;
            phantom.wavefront = req.wavefront;
            phantom.cu = req.cu;
            below_.access(std::move(req));
            below_.access(std::move(phantom));
            return;
          }
          case sim::FaultKind::None:
            break;
        }
        below_.access(std::move(req));
    }

    const sim::FaultInjector &injector() const { return injector_; }

  private:
    sim::EventQueue &eq_;
    MemoryDevice &below_;
    sim::FaultInjector injector_;
};

} // namespace gpuwalk::mem

#endif // GPUWALK_MEM_FAULT_INJECTION_HH
