#include "mem/dram_controller.hh"

#include <algorithm>

#include "sim/audit.hh"
#include "sim/debug.hh"
#include "sim/port.hh"

namespace gpuwalk::mem {

DramController::DramController(sim::EventQueue &eq, const DramConfig &cfg)
    : eq_(eq), cfg_(cfg), mapper_(cfg), statGroup_("dram")
{
    cfg_.validate();
    for (unsigned c = 0; c < cfg_.channels; ++c) {
        Channel &ch = channels_.emplace_back();
        ch.banks.resize(mapper_.banksPerChannel());
        ch.drain.ctrl = this;
        ch.drain.chan = c;
    }

    statGroup_.add(reads_);
    statGroup_.add(writes_);
    statGroup_.add(rowHits_);
    statGroup_.add(rowMisses_);
    statGroup_.add(rowConflicts_);
    statGroup_.add(walkAccesses_);
    statGroup_.add(refreshDelays_);
    statGroup_.add(latency_);
    statGroup_.add(queueDepth_);
}

void
DramController::registerInvariants(sim::Auditor &auditor)
{
    auditor.registerInvariant(
        "dram.queues_drained", [this](sim::AuditContext &ctx) {
            if (!ctx.final())
                return;
            for (std::size_t c = 0; c < channels_.size(); ++c) {
                ctx.require(channels_[c].queue.empty(), "channel ", c,
                            " holds ", channels_[c].queue.size(),
                            " requests at drain");
            }
        });
}

void
DramController::access(MemoryRequest req)
{
    Pending p;
    p.where = mapper_.decode(req.addr);
    p.req = std::move(req);
    p.arrival = eq_.now();
    p.seq = nextSeq_++;

    if (p.req.write)
        ++writes_;
    else
        ++reads_;
    if (p.req.requester == Requester::PageWalk)
        ++walkAccesses_;

    unsigned chan = p.where.channel;
    queueDepth_.sample(static_cast<double>(channels_[chan].queue.size()));
    channels_[chan].queue.push_back(std::move(p));
    trySchedule(chan);
}

void
DramController::trySchedule(unsigned chan)
{
    Channel &ch = channels_[chan];
    if (ch.queue.empty())
        return;

    const sim::Tick now = eq_.now();

    // FR-FCFS: find the best issuable request. A request is issuable
    // when its bank can accept a new command now; banks operate in
    // parallel and only the data bursts serialize on the channel bus.
    // Among candidates, row hits beat non-hits, then age.
    std::size_t best = ch.queue.size();
    bool best_hit = false;
    sim::Tick soonest = sim::maxTick;

    for (std::size_t i = 0; i < ch.queue.size(); ++i) {
        const Pending &p = ch.queue[i];
        const BankState &bank = ch.banks[mapper_.flatBank(p.where)];
        const bool hit = bank.rowOpen && bank.openRow == p.where.row;
        soonest = std::min(soonest, bank.readyAt);

        if (bank.readyAt > now)
            continue; // bank busy this instant
        if (best == ch.queue.size() || (hit && !best_hit)) {
            best = i;
            best_hit = hit;
        }
    }

    if (best < ch.queue.size()) {
        issue(ch, best);
        // More requests may be issuable back to back.
        if (!ch.queue.empty())
            trySchedule(chan);
        return;
    }

    // Nothing issuable now: wake up when the earliest constraint clears.
    if (!ch.drain.scheduled() && soonest != sim::maxTick && soonest > now)
        eq_.schedule(soonest, ch.drain);
}

void
DramController::DrainEvent::process()
{
    ctrl->trySchedule(chan);
}

void
DramController::issue(Channel &ch, std::size_t idx)
{
    Pending p = std::move(ch.queue[idx]);
    ch.queue.erase(ch.queue.begin() + static_cast<std::ptrdiff_t>(idx));

    const sim::Tick now = eq_.now();
    BankState &bank = ch.banks[mapper_.flatBank(p.where)];

    // Bank command timing: PRE/ACT/CAS overlap freely across banks.
    sim::Tick cmd_start = std::max(now, bank.readyAt);
    cmd_start = applyRefresh(bank, p.where.rank, cmd_start);
    sim::Tick ready_for_data = 0;

    if (bank.rowOpen && bank.openRow == p.where.row) {
        // Row hit: CAS only.
        ++rowHits_;
        ready_for_data = cmd_start + cfg_.cl();
    } else if (!bank.rowOpen) {
        // Closed bank: ACT then CAS.
        ++rowMisses_;
        ready_for_data = cmd_start + cfg_.rcd() + cfg_.cl();
        bank.activatedAt = cmd_start;
    } else {
        // Conflict: PRE (respecting tRAS), ACT, CAS.
        ++rowConflicts_;
        sim::Tick pre_at = std::max(cmd_start,
                                    bank.activatedAt + cfg_.ras());
        sim::Tick act_at = pre_at + cfg_.rp();
        ready_for_data = act_at + cfg_.rcd() + cfg_.cl();
        bank.activatedAt = act_at;
    }

    bank.rowOpen = true;
    bank.openRow = p.where.row;

    // Only the data burst serializes on the shared channel bus.
    const sim::Tick data_start = std::max(ready_for_data, ch.busFreeAt);
    const sim::Tick done = data_start + cfg_.burst();
    ch.busFreeAt = done;

    // The bank can accept its next CAS tCCD after this one; writes
    // additionally hold it for the write recovery time.
    bank.readyAt = data_start + cfg_.ccd();
    if (p.req.write)
        bank.readyAt = done + cfg_.wr();

    bank.lastIssue = cmd_start;
    latency_.sample(static_cast<double>(done - p.arrival));
    sim::debug::log("dram", now, p.req.write ? "WR" : "RD", " addr=",
                    std::hex, p.req.addr, std::dec, " bank=",
                    mapper_.flatBank(p.where), " done@", done);

    if (p.req.reply) {
        // Channel wiring: the finished request travels back across the
        // domain boundary and completes in the requester's domain. In
        // serial mode this schedules the same single completion event
        // the direct form below does.
        sim::Channel<MemoryRequest> *ch = p.req.reply;
        p.req.reply = nullptr;
        ch->sendAt(done, std::move(p.req));
    } else {
        eq_.schedule(done, [req = std::move(p.req)]() mutable {
            req.complete();
        });
    }
}

sim::Tick
DramController::applyRefresh(BankState &bank, unsigned rank,
                             sim::Tick when)
{
    if (!cfg_.enableRefresh)
        return when;

    // Ranks refresh out of phase to avoid a system-wide blackout.
    // The first refresh of rank r falls at phase(r) + tREFI; nothing
    // needs refreshing at time zero.
    const sim::Tick phase =
        cfg_.tREFI * rank / std::max(1u, cfg_.ranksPerChannel);
    if (when < phase + cfg_.tREFI)
        return when;
    const sim::Tick window_start =
        (when - phase) / cfg_.tREFI * cfg_.tREFI + phase;

    // A refresh boundary between the bank's last use and now closes
    // its open row (refresh precharges all banks).
    if (bank.rowOpen && bank.lastIssue < window_start)
        bank.rowOpen = false;

    if (when >= window_start && when < window_start + cfg_.tRFC) {
        ++refreshDelays_;
        return window_start + cfg_.tRFC;
    }
    return when;
}

} // namespace gpuwalk::mem
