/**
 * @file
 * DDR3 DRAM organization, timing parameters, and address decoding.
 *
 * Baseline (Table I): DDR3-1600 (800 MHz command clock), 2 channels,
 * 2 ranks per channel, 16 banks per rank. Timings follow common
 * DDR3-1600 CL11 parts.
 */

#ifndef GPUWALK_MEM_DRAM_HH
#define GPUWALK_MEM_DRAM_HH

#include <cstdint>

#include "mem/types.hh"
#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace gpuwalk::mem {

/** Organization and timing of the DRAM subsystem. */
struct DramConfig
{
    unsigned channels = 2;
    unsigned ranksPerChannel = 2;
    unsigned banksPerRank = 16;

    /** Row size (per bank) in bytes: determines row-hit locality. */
    Addr rowBytes = 8192;

    /** Command clock period in ticks (DDR3-1600: 1.25 ns). */
    sim::Tick tCK = 1250;

    // Timings in command-clock cycles (DDR3-1600 CL11 class).
    unsigned tRCD = 11;  ///< ACT to internal READ/WRITE
    unsigned tCL = 11;   ///< READ to first data
    unsigned tRP = 11;   ///< PRE to ACT
    unsigned tRAS = 28;  ///< ACT to PRE (min)
    unsigned tBURST = 4; ///< data burst occupancy (BL8, DDR)
    unsigned tWR = 12;   ///< end of write data to PRE
    unsigned tCCD = 4;   ///< CAS to CAS, same rank

    /**
     * All-bank refresh: every tREFI the rank is unavailable for tRFC
     * and all its rows close. Modelled lazily (no periodic events):
     * commands landing in a refresh window are pushed past it, and a
     * row opened before the last refresh boundary reads as closed.
     */
    bool enableRefresh = true;
    sim::Tick tREFI = 7'800'000; ///< 7.8 us in ticks
    sim::Tick tRFC = 260'000;    ///< 260 ns in ticks

    sim::Tick rcd() const { return tRCD * tCK; }
    sim::Tick cl() const { return tCL * tCK; }
    sim::Tick rp() const { return tRP * tCK; }
    sim::Tick ras() const { return tRAS * tCK; }
    sim::Tick burst() const { return tBURST * tCK; }
    sim::Tick wr() const { return tWR * tCK; }
    sim::Tick ccd() const { return tCCD * tCK; }

    unsigned totalBanks() const { return channels * ranksPerChannel * banksPerRank; }

    void
    validate() const
    {
        GPUWALK_ASSERT(channels > 0 && (channels & (channels - 1)) == 0,
                       "channels must be a power of two");
        GPUWALK_ASSERT(rowBytes % cacheLineSize == 0, "rowBytes alignment");
    }
};

/** The DRAM coordinates of a physical address. */
struct DramAddress
{
    unsigned channel = 0;
    unsigned rank = 0;
    unsigned bank = 0;
    std::uint64_t row = 0;
    std::uint64_t column = 0; ///< line-sized column index within the row
};

/**
 * Decodes a physical address into DRAM coordinates.
 *
 * Mapping (low to high bits): line offset | channel | bank | rank | row.
 * Interleaving consecutive lines across channels, then banks, spreads
 * streaming traffic for bank-level parallelism, the conventional
 * performance-oriented mapping.
 */
class DramAddressMapper
{
  public:
    explicit DramAddressMapper(const DramConfig &cfg) : cfg_(cfg)
    {
        cfg_.validate();
        linesPerRow_ = cfg_.rowBytes / cacheLineSize;
    }

    DramAddress
    decode(Addr addr) const
    {
        DramAddress d;
        std::uint64_t line = addr / cacheLineSize;
        d.channel = static_cast<unsigned>(line % cfg_.channels);
        line /= cfg_.channels;
        d.bank = static_cast<unsigned>(line % cfg_.banksPerRank);
        line /= cfg_.banksPerRank;
        d.rank = static_cast<unsigned>(line % cfg_.ranksPerChannel);
        line /= cfg_.ranksPerChannel;
        d.column = line % linesPerRow_;
        d.row = line / linesPerRow_;
        return d;
    }

    /** Flat bank index within a channel: rank * banksPerRank + bank. */
    unsigned
    flatBank(const DramAddress &d) const
    {
        return d.rank * cfg_.banksPerRank + d.bank;
    }

    unsigned banksPerChannel() const
    {
        return cfg_.ranksPerChannel * cfg_.banksPerRank;
    }

  private:
    DramConfig cfg_;
    std::uint64_t linesPerRow_ = 0;
};

} // namespace gpuwalk::mem

#endif // GPUWALK_MEM_DRAM_HH
