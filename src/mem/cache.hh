/**
 * @file
 * Set-associative, write-back, write-allocate timing cache with MSHRs.
 *
 * Used for the GPU's L1 data caches (per CU) and the shared L2 (Table
 * I: 32 KB/16-way and 4 MB/16-way, 64 B lines). The model is timing
 * only — data contents are not stored; functional state (page tables)
 * lives in the BackingStore and is accessed uncached by the walker
 * model's functional reads.
 */

#ifndef GPUWALK_MEM_CACHE_HH
#define GPUWALK_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/request.hh"
#include "sim/event_queue.hh"
#include "sim/flat_map.hh"
#include "sim/object_pool.hh"
#include "sim/stats.hh"

namespace gpuwalk::sim {
class Auditor;
} // namespace gpuwalk::sim

namespace gpuwalk::mem {

/** Geometry and timing of one cache. */
struct CacheConfig
{
    std::string name = "cache";
    Addr sizeBytes = 32 * 1024;
    unsigned associativity = 16;
    Addr lineBytes = cacheLineSize;
    sim::Tick hitLatency = 1 * 500;   ///< ticks (1 GPU cycle default)
    sim::Tick tagLatency = 1 * 500;   ///< added on the miss path
    unsigned mshrs = 32;              ///< distinct outstanding lines

    Addr numSets() const
    {
        return sizeBytes / (lineBytes * associativity);
    }
};

/** A blocking-free (MSHR-based) timing cache. */
class Cache : public MemoryDevice
{
  public:
    /**
     * @param eq The system event queue.
     * @param cfg Geometry/timing.
     * @param below The next level (L2 or the DRAM controller).
     */
    Cache(sim::EventQueue &eq, const CacheConfig &cfg, MemoryDevice &below);

    void access(MemoryRequest req) override;

    sim::StatGroup &stats() { return statGroup_; }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t evictions() const { return evictions_.value(); }
    std::uint64_t writebacks() const { return writebacks_.value(); }
    std::uint64_t mshrMerges() const { return mshrMerges_.value(); }

    /** Fraction of accesses that hit (0 if none). */
    double
    hitRate() const
    {
        const std::uint64_t total = hits_.value() + misses_.value();
        return total ? static_cast<double>(hits_.value()) / total : 0.0;
    }

    /** Invalidates all lines (e.g., between experiment phases). */
    void flushAll();

    /**
     * Registers this cache's conservation invariants (MSHR table vs.
     * pool accounting), named after the cache so one auditor can hold
     * every cache in the system apart.
     */
    void registerInvariants(sim::Auditor &auditor);

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    /** Pooled and recycled with its waiter-vector capacity intact, so
     *  the steady-state miss path does not allocate. */
    struct Mshr
    {
        std::vector<MemoryRequest> waiters;
        bool anyWrite = false;
    };

    Addr setIndex(Addr addr) const
    {
        return (addr / cfg_.lineBytes) % numSets_;
    }
    Addr tagOf(Addr addr) const
    {
        return (addr / cfg_.lineBytes) / numSets_;
    }

    Line *findLine(Addr addr);
    void installLine(Addr addr, bool dirty);
    void handleFill(Addr line_addr);

    sim::EventQueue &eq_;
    CacheConfig cfg_;
    MemoryDevice &below_;
    Addr numSets_ = 0;
    std::vector<std::vector<Line>> sets_;
    sim::FlatMap<Addr, Mshr *> mshrs_; ///< keyed by line base addr
    sim::ObjectPool<Mshr> mshrPool_{64};
    std::uint64_t useClock_ = 0;

    sim::StatGroup statGroup_;
    sim::Counter hits_{"hits", "demand hits"};
    sim::Counter misses_{"misses", "demand misses (MSHR allocations)"};
    sim::Counter mshrMerges_{"mshr_merges",
                             "requests merged into an in-flight miss"};
    sim::Counter evictions_{"evictions", "lines evicted"};
    sim::Counter writebacks_{"writebacks", "dirty lines written back"};
};

} // namespace gpuwalk::mem

#endif // GPUWALK_MEM_CACHE_HH
