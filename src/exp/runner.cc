#include "exp/runner.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "sim/logging.hh"

namespace gpuwalk::exp {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

const RunResult &
SweepResult::at(const std::string &workload,
                const std::string &scheduler,
                const std::string &variant) const
{
    for (const auto &run : runs_) {
        if (run.workload != workload)
            continue;
        if (!scheduler.empty() && run.scheduler != scheduler)
            continue;
        if (!variant.empty() && run.variant != variant)
            continue;
        return run;
    }
    sim::panic("no sweep result for (workload='", workload,
               "', scheduler='", scheduler, "', variant='", variant,
               "')");
}

const RunResult &
SweepResult::at(const std::string &workload,
                core::SchedulerKind scheduler,
                const std::string &variant) const
{
    return at(workload, core::toString(scheduler), variant);
}

const system::RunStats &
SweepResult::stats(const std::string &workload,
                   core::SchedulerKind scheduler,
                   const std::string &variant) const
{
    return at(workload, scheduler, variant).stats;
}

SweepResult
runJobs(const std::vector<Job> &jobs, const RunnerOptions &opts)
{
    SweepResult out;
    out.runs_.resize(jobs.size());

    unsigned workers =
        opts.jobs ? opts.jobs
                  : std::max(1u, std::thread::hardware_concurrency());
    if (jobs.size() < workers)
        workers = static_cast<unsigned>(jobs.size());
    if (workers == 0)
        workers = 1;

    // Each run may itself spin up simThreads domain workers; keep
    // jobs x simThreads within the machine instead of thrashing it.
    if (opts.simThreads != 1 && workers > 1) {
        const unsigned hw =
            std::max(1u, std::thread::hardware_concurrency());
        const unsigned per_run =
            opts.simThreads == 0 ? std::min(3u, hw) : opts.simThreads;
        const unsigned cap = std::max(1u, hw / per_run);
        if (workers > cap) {
            sim::warn("clamping sweep workers ", workers, " -> ", cap,
                      " (", per_run, " simulation threads per run on ",
                      hw, " hardware threads)");
            workers = cap;
        }
    }
    out.jobs_used_ = workers;

    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> cancelled{false};
    std::mutex error_mutex;
    std::exception_ptr first_error;

    auto worker = [&] {
        while (!cancelled.load(std::memory_order_relaxed)) {
            const std::size_t i =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            const auto start = std::chrono::steady_clock::now();
            try {
                RunResult result = jobs[i].body();
                result.wallSeconds = secondsSince(start);
                // The job's labels are authoritative: custom bodies
                // need not repeat them.
                result.workload = jobs[i].workload;
                result.scheduler = jobs[i].scheduler;
                result.variant = jobs[i].variant;
                result.seed = jobs[i].seed;
                out.runs_[i] = std::move(result);
            } catch (...) {
                {
                    const std::lock_guard<std::mutex> lock(error_mutex);
                    if (!first_error)
                        first_error = std::current_exception();
                }
                cancelled.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    const auto sweep_start = std::chrono::steady_clock::now();
    if (workers == 1) {
        // --jobs 1 stays strictly serial on the calling thread: no
        // pool, no interleaving — the reference execution.
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }
    out.wall_seconds_ = secondsSince(sweep_start);

    if (first_error)
        std::rethrow_exception(first_error);
    return out;
}

SweepResult
runSweep(const SweepSpec &spec, const RunnerOptions &opts)
{
    if (!opts.trace.enabled && !opts.audit.enabled
        && !opts.gmmu.enabled
        && opts.prefetch.kind == iommu::PrefetchKind::Off
        && !opts.wasp
        && opts.specAdmission == iommu::SpecAdmission::Idle
        && opts.simThreads == 1) {
        return runJobs(spec.expand(), opts);
    }
    SweepSpec instrumented = spec;
    if (opts.trace.enabled)
        instrumented.base.trace = opts.trace;
    if (opts.audit.enabled)
        instrumented.base.audit = opts.audit;
    if (opts.gmmu.enabled)
        instrumented.base.gmmu = opts.gmmu;
    if (opts.prefetch.kind != iommu::PrefetchKind::Off)
        instrumented.base.iommu.prefetch = opts.prefetch;
    if (opts.wasp) {
        instrumented.base.gpu.wavefrontSched =
            gpu::WavefrontSchedPolicy::Wasp;
        instrumented.base.gpu.waspLeaders = opts.waspLeaders;
        instrumented.base.gpu.waspDistanceCycles =
            opts.waspDistanceCycles;
    }
    if (opts.specAdmission != iommu::SpecAdmission::Idle)
        instrumented.base.iommu.specAdmission = opts.specAdmission;
    instrumented.base.simThreads = opts.simThreads;
    return runJobs(instrumented.expand(), opts);
}

} // namespace gpuwalk::exp
