/**
 * @file
 * Declarative experiment sweeps.
 *
 * A SweepSpec names the axes of an experiment — workloads x scheduling
 * policies x config variants x seeds — and expands into a flat list of
 * independent jobs, each of which builds its own System when executed.
 * The figure/table benches declare their sweep instead of hand-rolling
 * nested loops; the ParallelRunner executes the expansion on a thread
 * pool.
 */

#ifndef GPUWALK_EXP_SWEEP_HH
#define GPUWALK_EXP_SWEEP_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/run.hh"

namespace gpuwalk::exp {

/**
 * One point on the sweep's config axis: a label plus a mutation of the
 * base configuration and/or workload parameters (e.g. "2M pages",
 * "1024-entry L2 TLB"). A null @ref apply leaves the base untouched.
 */
struct ConfigVariant
{
    std::string name;
    std::function<void(system::SystemConfig &,
                       workload::WorkloadParams &)>
        apply;
};

/**
 * A fully resolved grid point, handed to the job body: every axis
 * label plus the final config and params after variant/scheduler/seed
 * application.
 */
struct JobSpec
{
    std::string workload;
    std::string scheduler;
    core::SchedulerKind schedulerKind = core::SchedulerKind::Fcfs;
    std::string variant;
    std::uint64_t seed = 0;
    system::SystemConfig cfg;
    workload::WorkloadParams params;
};

/** What actually runs for one grid point. */
using JobBody = std::function<RunResult(const JobSpec &)>;

/**
 * One executable unit of a sweep. The runner calls @ref body on a
 * worker thread; labels identify the result row afterwards.
 */
struct Job
{
    std::string workload;
    std::string scheduler;
    std::string variant;
    std::uint64_t seed = 0;
    std::function<RunResult()> body;
};

/** Builds a System from spec.cfg and runs spec.workload (the default
 *  body; custom bodies cover co-runs, extra counters, ...). */
RunResult defaultJobBody(const JobSpec &spec);

/**
 * The declarative description of one experiment: axes over a base
 * configuration. expand() produces the cross product in a fixed,
 * deterministic order (variant-major, then workload, scheduler, seed)
 * so result rows line up with the paper's table layouts regardless of
 * execution order or thread count.
 */
struct SweepSpec
{
    system::SystemConfig base;
    workload::WorkloadParams params;

    std::vector<std::string> workloads;
    std::vector<core::SchedulerKind> schedulers{
        core::SchedulerKind::Fcfs};
    /** Empty means a single unnamed variant of the base config. */
    std::vector<ConfigVariant> variants;
    /** Empty means a single run at params.seed / base.schedulerSeed. */
    std::vector<std::uint64_t> seeds;

    /** Overrides the standard build-run body when set. */
    JobBody body;

    SweepSpec()
        : base(system::SystemConfig::baseline()),
          params(experimentParams())
    {}

    std::vector<Job> expand() const;
};

/** Concatenates job lists (heterogeneous sweeps run as one pool). */
std::vector<Job> concat(std::vector<Job> a, std::vector<Job> b);

} // namespace gpuwalk::exp

#endif // GPUWALK_EXP_SWEEP_HH
