/**
 * @file
 * The flag surface every figure/table bench shares: --jobs for the
 * parallel runner, --json for structured results, --help. Benches call
 * parseBenchArgs() first thing in main(); anything unrecognized is a
 * fatal error so typos never silently run the default sweep.
 */

#ifndef GPUWALK_EXP_BENCH_CLI_HH
#define GPUWALK_EXP_BENCH_CLI_HH

#include <string>

#include "exp/runner.hh"

namespace gpuwalk::exp {

/** Parsed common bench flags. */
struct BenchOptions
{
    RunnerOptions runner;
    std::string jsonPath;  ///< empty = no JSON output
};

/**
 * Parses --jobs[=]N, --sim-threads[=]N, --json[=]PATH,
 * --trace-out[=]PATH, --trace-ring[=]N, --audit,
 * --audit-interval[=]N, the demand-paging knobs
 * (--oversubscription[=]R, --fault-latency[=]N,
 * --migration-latency[=]N, --fault-policy[=]P, --gmmu-batch[=]N,
 * --gmmu-evict[=]P, --no-contiguity), --help. Both
 * "--flag=value" and "--flag value" spellings are accepted. --help
 * prints @p id / @p description plus the flag reference and exits;
 * unknown flags are fatal.
 */
BenchOptions parseBenchArgs(int argc, char **argv,
                            const std::string &id,
                            const std::string &description);

} // namespace gpuwalk::exp

#endif // GPUWALK_EXP_BENCH_CLI_HH
