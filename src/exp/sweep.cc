#include "exp/sweep.hh"

namespace gpuwalk::exp {

RunResult
defaultJobBody(const JobSpec &spec)
{
    auto result = runOne(spec.cfg, spec.workload, spec.params);
    result.variant = spec.variant;
    result.seed = spec.seed;
    return result;
}

std::vector<Job>
SweepSpec::expand() const
{
    const JobBody run_body = body ? body : defaultJobBody;

    // Singleton placeholders so the cross product below stays a plain
    // four-deep loop even for unused axes.
    const std::vector<ConfigVariant> variant_axis =
        variants.empty() ? std::vector<ConfigVariant>{{"", nullptr}}
                         : variants;
    // Only an explicit seed axis overrides the seeds baked into the
    // base config/params (the baseline pairs workload seed 42 with
    // scheduler seed 1; silently collapsing them would perturb the
    // random-scheduler stream).
    const bool explicit_seeds = !seeds.empty();
    const std::vector<std::uint64_t> seed_axis =
        explicit_seeds ? seeds
                       : std::vector<std::uint64_t>{params.seed};

    std::vector<Job> jobs;
    jobs.reserve(variant_axis.size() * workloads.size()
                 * schedulers.size() * seed_axis.size());
    for (const auto &variant : variant_axis) {
        for (const auto &workload : workloads) {
            for (const auto kind : schedulers) {
                for (const auto seed : seed_axis) {
                    JobSpec spec;
                    spec.workload = workload;
                    spec.scheduler = core::toString(kind);
                    spec.schedulerKind = kind;
                    spec.variant = variant.name;
                    spec.seed = seed;
                    spec.cfg = withScheduler(base, kind);
                    spec.params = params;
                    if (explicit_seeds) {
                        spec.params.seed = seed;
                        spec.cfg.schedulerSeed = seed;
                    }
                    if (variant.apply)
                        variant.apply(spec.cfg, spec.params);

                    Job job;
                    job.workload = spec.workload;
                    job.scheduler = spec.scheduler;
                    job.variant = spec.variant;
                    job.seed = spec.seed;
                    job.body = [run_body, spec = std::move(spec)] {
                        return run_body(spec);
                    };
                    jobs.push_back(std::move(job));
                }
            }
        }
    }
    return jobs;
}

std::vector<Job>
concat(std::vector<Job> a, std::vector<Job> b)
{
    a.reserve(a.size() + b.size());
    for (auto &job : b)
        a.push_back(std::move(job));
    return a;
}

} // namespace gpuwalk::exp
