#include "exp/run.hh"

namespace gpuwalk::exp {

RunResult
runOne(const system::SystemConfig &cfg, const std::string &workload,
       const workload::WorkloadParams &params)
{
    system::System sys(cfg);
    sys.loadBenchmark(workload, params);
    RunResult result;
    result.workload = workload;
    result.scheduler = core::toString(cfg.scheduler);
    result.schedulerKind = cfg.scheduler;
    result.seed = params.seed;
    result.stats = sys.run();
    return result;
}

system::SystemConfig
withScheduler(system::SystemConfig cfg, core::SchedulerKind kind)
{
    cfg.scheduler = kind;
    return cfg;
}

workload::WorkloadParams
experimentParams()
{
    workload::WorkloadParams params;
    params.wavefronts = 256;              // oversubscribed; 2 resident/CU
    params.instructionsPerWavefront = 48;
    params.seed = 42;
    params.footprintScale = 1.0;          // Table II footprints
    params.computeCycles = 200;           // base; scaled per benchmark
    return params;
}

} // namespace gpuwalk::exp
