#include "exp/run.hh"

#include "exp/report.hh"
#include "trace/chrome_export.hh"

namespace gpuwalk::exp {

std::string
traceFilePath(const system::SystemConfig &cfg,
              const std::string &workload, std::uint64_t seed)
{
    const std::string &base = cfg.trace.outPath;
    const auto slash = base.find_last_of('/');
    auto dot = base.find_last_of('.');
    if (dot == std::string::npos
        || (slash != std::string::npos && dot < slash)) {
        dot = base.size();
    }
    return base.substr(0, dot) + "-" + workload + "-"
           + core::toString(cfg.scheduler) + "-"
           + configFingerprint(cfg).substr(0, 8) + "-s"
           + std::to_string(seed) + base.substr(dot);
}

RunResult
runOne(const system::SystemConfig &cfg, const std::string &workload,
       const workload::WorkloadParams &params)
{
    system::System sys(cfg);
    sys.loadBenchmark(workload, params);
    RunResult result;
    result.workload = workload;
    result.scheduler = core::toString(cfg.scheduler);
    result.schedulerKind = cfg.scheduler;
    result.seed = params.seed;
    result.stats = sys.run();
    if (sys.tracer() && !cfg.trace.outPath.empty()) {
        trace::writeChromeTraceFile(traceFilePath(cfg, workload,
                                                  params.seed),
                                    *sys.tracer());
    }
    return result;
}

system::SystemConfig
withScheduler(system::SystemConfig cfg, core::SchedulerKind kind)
{
    cfg.scheduler = kind;
    return cfg;
}

workload::WorkloadParams
experimentParams()
{
    workload::WorkloadParams params;
    params.wavefronts = 256;              // oversubscribed; 2 resident/CU
    params.instructionsPerWavefront = 48;
    params.seed = 42;
    params.footprintScale = 1.0;          // Table II footprints
    params.computeCycles = 200;           // base; scaled per benchmark
    return params;
}

} // namespace gpuwalk::exp
