#include "exp/table.hh"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace gpuwalk::exp {

TablePrinter::TablePrinter(std::vector<std::string> columns,
                           unsigned width)
    : columns_(std::move(columns)), width_(width)
{}

void
TablePrinter::printHeader(std::ostream &os) const
{
    printRow(os, columns_);
    printRule(os);
}

void
TablePrinter::printRow(std::ostream &os,
                       const std::vector<std::string> &cells) const
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i == 0)
            os << std::left << std::setw(width_) << cells[i];
        else
            os << std::right << std::setw(width_) << cells[i];
    }
    os << "\n";
}

void
TablePrinter::printRule(std::ostream &os) const
{
    os << std::string(width_ * columns_.size(), '-') << "\n";
}

std::string
TablePrinter::fmt(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

void
printBanner(std::ostream &os, const std::string &experiment_id,
            const std::string &description,
            const system::SystemConfig &cfg)
{
    os << "==============================================================\n"
       << experiment_id << ": " << description << "\n"
       << "--------------------------------------------------------------\n";
    cfg.print(os);
    os << "==============================================================\n";
}

} // namespace gpuwalk::exp
