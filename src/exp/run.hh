/**
 * @file
 * Single-run primitives of the experiment subsystem: build one System,
 * run one (workload, scheduler, config) point, collect its statistics.
 *
 * Everything above this layer (sweeps, the parallel runner, reports)
 * composes these primitives; nothing below it knows experiments exist.
 */

#ifndef GPUWALK_EXP_RUN_HH
#define GPUWALK_EXP_RUN_HH

#include <cstdint>
#include <map>
#include <string>

#include "system/system.hh"

namespace gpuwalk::exp {

/**
 * One (workload, scheduler, config-variant, seed) simulation outcome.
 *
 * The label fields identify the sweep-grid point the result belongs
 * to; @ref extra carries experiment-specific scalars (e.g. prefetch
 * counts, mapped footprints) that RunStats does not model.
 */
struct RunResult
{
    std::string workload;
    std::string scheduler;                ///< policy label (toString)
    std::string variant;                  ///< config-variant label
    std::uint64_t seed = 0;
    core::SchedulerKind schedulerKind = core::SchedulerKind::Fcfs;
    system::RunStats stats;
    std::map<std::string, double> extra;  ///< bench-specific scalars
    double wallSeconds = 0.0;             ///< host time, runner-filled
};

/**
 * Builds a fresh System with @p cfg, loads @p workload, runs it.
 * Every run is fully independent (own page table, TLBs, RNG streams),
 * which is what lets the ParallelRunner execute runs concurrently
 * without perturbing their simulated behaviour.
 */
RunResult runOne(const system::SystemConfig &cfg,
                 const std::string &workload,
                 const workload::WorkloadParams &params);

/** Convenience: @p cfg with its scheduler swapped to @p kind. */
system::SystemConfig withScheduler(system::SystemConfig cfg,
                                   core::SchedulerKind kind);

/**
 * The Chrome-trace output path runOne writes for one run: the
 * configured cfg.trace.outPath uniquified with the workload,
 * scheduler, a config-fingerprint prefix (distinguishes variants) and
 * the seed, so every run of a sweep gets its own file.
 */
std::string traceFilePath(const system::SystemConfig &cfg,
                          const std::string &workload,
                          std::uint64_t seed);

/**
 * The default experiment workload shape. Smaller than the paper's
 * full applications (simulation budget), but big enough to exercise
 * TLB thrashing and walker contention at Table II footprints.
 */
workload::WorkloadParams experimentParams();

} // namespace gpuwalk::exp

#endif // GPUWALK_EXP_RUN_HH
