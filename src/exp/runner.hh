/**
 * @file
 * Parallel sweep execution.
 *
 * Every job builds its own System (own page table, TLBs, RNG streams,
 * event queue), so simulated results are bit-for-bit identical
 * regardless of thread count — parallelism only changes host wall
 * time. Results land at their job's expansion index, keeping report
 * row order deterministic too.
 */

#ifndef GPUWALK_EXP_RUNNER_HH
#define GPUWALK_EXP_RUNNER_HH

#include <string>
#include <vector>

#include "exp/sweep.hh"
#include "iommu/iommu.hh"
#include "iommu/prefetch/translation_prefetcher.hh"
#include "sim/audit.hh"
#include "sim/ticks.hh"
#include "trace/trace.hh"
#include "vm/gmmu.hh"

namespace gpuwalk::exp {

/** Execution knobs for a sweep. */
struct RunnerOptions
{
    /** Worker threads; 0 means std::thread::hardware_concurrency. */
    unsigned jobs = 0;

    /**
     * Simulation threads *inside* each run (SystemConfig::simThreads):
     * 1 (default) = classic serial engine, N > 1 = one latency-
     * decoupled domain (group) per thread, 0 = auto. Copied into the
     * spec's base config by runSweep. Results are bit-identical at
     * every value; combined with @ref jobs, runJobs clamps the worker
     * count so jobs x simThreads never oversubscribes the host.
     */
    unsigned simThreads = 1;

    /**
     * Walk-lifecycle tracing applied to every run of the sweep
     * (runSweep copies it into the spec's base config before
     * expansion). Observation-only: simulated results are unchanged.
     */
    trace::TraceConfig trace;

    /**
     * Conservation auditing applied to every run of the sweep (same
     * copy-into-base mechanism as tracing). Observation-only; each
     * run's violations land in its RunStats audit fields.
     */
    sim::AuditConfig audit;

    /**
     * Demand paging / oversubscription applied to every run of the
     * sweep (same copy-into-base mechanism). NOT observation-only:
     * faulting runs simulate different machines than resident runs,
     * so this only applies when gmmu.enabled is set.
     */
    vm::GmmuConfig gmmu;

    /**
     * Translation prefetching applied to every run of the sweep (same
     * copy-into-base mechanism). NOT observation-only: speculative
     * walks change TLB contents and walker occupancy, so this only
     * applies when prefetch.kind != Off.
     */
    iommu::PrefetchConfig prefetch;

    /**
     * Wasp wavefront scheduling applied to every run of the sweep
     * (same copy-into-base mechanism). NOT observation-only: leaders
     * reorder issue and add speculative walks, so the policy + knobs
     * copy in only when wasp is true.
     */
    bool wasp = false;
    unsigned waspLeaders = 1;
    sim::Cycles waspDistanceCycles = 2048;

    /**
     * Speculative-walk admission applied to every run of the sweep
     * (same mechanism; copies in only when != Idle, the default).
     */
    iommu::SpecAdmission specAdmission = iommu::SpecAdmission::Idle;
};

/**
 * The outcome of one sweep: per-run results in expansion order plus
 * aggregate execution facts.
 */
class SweepResult
{
  public:
    const std::vector<RunResult> &runs() const { return runs_; }

    /**
     * The run matching the given labels; an empty @p scheduler or
     * @p variant matches anything. panic() if nothing matches (a
     * label typo is a bench bug, not a runtime condition).
     */
    const RunResult &at(const std::string &workload,
                        const std::string &scheduler = "",
                        const std::string &variant = "") const;

    /** Overload keyed on the scheduler enum. */
    const RunResult &at(const std::string &workload,
                        core::SchedulerKind scheduler,
                        const std::string &variant = "") const;

    /** Shorthand for at(...).stats. */
    const system::RunStats &stats(const std::string &workload,
                                  core::SchedulerKind scheduler,
                                  const std::string &variant = "") const;

    /** Host seconds for the whole sweep (parallel wall time). */
    double wallSeconds() const { return wall_seconds_; }

    /** Worker threads actually used. */
    unsigned jobsUsed() const { return jobs_used_; }

  private:
    friend SweepResult runJobs(const std::vector<Job> &,
                               const RunnerOptions &);

    std::vector<RunResult> runs_;
    double wall_seconds_ = 0.0;
    unsigned jobs_used_ = 1;
};

/**
 * Executes @p jobs on a worker pool.
 *
 * Work is pulled from an atomic cursor; each result is stored at its
 * job index. The first exception cancels the pool — workers finish
 * their current job, take nothing new — and is rethrown on the
 * caller's thread once all workers joined. Per-job host wall time is
 * recorded on every completed result.
 */
SweepResult runJobs(const std::vector<Job> &jobs,
                    const RunnerOptions &opts = {});

/** Expands @p spec and runs the jobs. */
SweepResult runSweep(const SweepSpec &spec,
                     const RunnerOptions &opts = {});

} // namespace gpuwalk::exp

#endif // GPUWALK_EXP_RUNNER_HH
