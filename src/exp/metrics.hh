/**
 * @file
 * Derived-metric math shared by the experiment reports: speedups and
 * geometric means, plus the MEAN-row accumulator the figure benches
 * use.
 */

#ifndef GPUWALK_EXP_METRICS_HH
#define GPUWALK_EXP_METRICS_HH

#include <vector>

#include "system/system.hh"

namespace gpuwalk::exp {

/** base runtime / test runtime: > 1 means @p test is faster. */
double speedup(const system::RunStats &test,
               const system::RunStats &base);

/** Geometric mean. @pre values positive, non-empty. */
double geomean(const std::vector<double> &values);

/** "MEAN" row helper: geometric mean over collected per-app values. */
class MeanTracker
{
  public:
    void add(double v) { values_.push_back(v); }
    double mean() const { return geomean(values_); }
    bool empty() const { return values_.empty(); }

  private:
    std::vector<double> values_;
};

} // namespace gpuwalk::exp

#endif // GPUWALK_EXP_METRICS_HH
