/**
 * @file
 * Derived-metric math shared by the experiment reports: speedups and
 * geometric means, plus the MEAN-row accumulator the figure benches
 * use.
 */

#ifndef GPUWALK_EXP_METRICS_HH
#define GPUWALK_EXP_METRICS_HH

#include <vector>

#include "system/system.hh"

namespace gpuwalk::exp {

/**
 * base runtime / test runtime: > 1 means @p test is faster. A zero
 * runtime on either side is a degenerate point: warns and returns NaN
 * (printed as-is in tables, null in JSON) instead of aborting a sweep.
 */
double speedup(const system::RunStats &test,
               const system::RunStats &base);

/**
 * Geometric mean. Empty input or any non-positive/NaN value is
 * degenerate: warns and returns NaN instead of aborting a sweep.
 */
double geomean(const std::vector<double> &values);

/**
 * Jain's fairness index over per-tenant allocations (slowdowns in the
 * QoS experiments): (Σx)² / (n·Σx²), 1 = perfectly fair, 1/n =
 * maximally unfair. Empty input or any non-positive/NaN value is
 * degenerate: warns and returns NaN instead of aborting a sweep.
 */
double jainIndex(const std::vector<double> &values);

/** "MEAN" row helper: geometric mean over collected per-app values. */
class MeanTracker
{
  public:
    void add(double v) { values_.push_back(v); }
    double mean() const { return geomean(values_); }
    bool empty() const { return values_.empty(); }

  private:
    std::vector<double> values_;
};

} // namespace gpuwalk::exp

#endif // GPUWALK_EXP_METRICS_HH
