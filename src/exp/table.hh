/**
 * @file
 * Fixed-width console-table formatting that mirrors the paper's
 * figures, and the standard bench banner. The Report module composes
 * these; benches that need ad-hoc output can use them directly.
 */

#ifndef GPUWALK_EXP_TABLE_HH
#define GPUWALK_EXP_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "system/system_config.hh"

namespace gpuwalk::exp {

/** Fixed-width console table, used by every figure bench. */
class TablePrinter
{
  public:
    /** @param columns Header labels; first column is left-aligned. */
    explicit TablePrinter(std::vector<std::string> columns,
                          unsigned width = 14);

    void printHeader(std::ostream &os) const;
    void printRow(std::ostream &os,
                  const std::vector<std::string> &cells) const;
    void printRule(std::ostream &os) const;

    /** Formats @p v with @p precision decimals. */
    static std::string fmt(double v, int precision = 3);

  private:
    std::vector<std::string> columns_;
    unsigned width_;
};

/** Shorthand for TablePrinter::fmt. */
inline std::string
fmt(double v, int precision = 3)
{
    return TablePrinter::fmt(v, precision);
}

/** Prints the standard bench banner (figure id + config summary). */
void printBanner(std::ostream &os, const std::string &experiment_id,
                 const std::string &description,
                 const system::SystemConfig &cfg);

} // namespace gpuwalk::exp

#endif // GPUWALK_EXP_TABLE_HH
