#include "exp/report.hh"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "sim/audit.hh"
#include "sim/logging.hh"
#include "trace/digest.hh"

#ifndef GPUWALK_GIT_SHA
#define GPUWALK_GIT_SHA "unknown"
#endif

namespace gpuwalk::exp {

namespace {

void
jsonEscape(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        case '\r': os << "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                os << "\\u" << std::hex << std::setw(4)
                   << std::setfill('0') << static_cast<int>(c)
                   << std::dec << std::setfill(' ');
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
jsonNumber(std::ostream &os, double v)
{
    // JSON has no NaN/Inf literal; degenerate metrics (empty geomean,
    // zero-runtime speedup) serialize as null rather than producing
    // unparseable output.
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    // Round-trippable doubles; identical values print identically, so
    // byte-comparing JSON is a valid determinism check.
    os << std::setprecision(17) << v << std::setprecision(6);
}

template <typename T>
void
jsonUintArray(std::ostream &os, const std::vector<T> &values)
{
    os << '[';
    for (std::size_t i = 0; i < values.size(); ++i)
        os << (i ? "," : "") << values[i];
    os << ']';
}

void
jsonDoubleArray(std::ostream &os, const std::vector<double> &values)
{
    os << '[';
    for (std::size_t i = 0; i < values.size(); ++i) {
        os << (i ? "," : "");
        jsonNumber(os, values[i]);
    }
    os << ']';
}

} // namespace

void
Report::Table::addRow(std::vector<std::string> cells)
{
    rows.push_back(Row{std::move(cells), false});
}

void
Report::Table::addRule()
{
    rows.push_back(Row{{}, true});
}

Report::Report(std::string id, std::string description,
               const system::SystemConfig &cfg)
    : id_(std::move(id)), description_(std::move(description)),
      have_cfg_(true), cfg_(cfg)
{}

Report::Report(std::string id, std::string description)
    : id_(std::move(id)), description_(std::move(description))
{}

Report::Table &
Report::addTable(std::vector<std::string> columns, std::string title,
                 unsigned width)
{
    Table table;
    table.title = std::move(title);
    table.columns = std::move(columns);
    table.width = width;
    tables_.push_back(std::move(table));
    return tables_.back();
}

void
Report::addNote(std::string text)
{
    notes_.push_back(std::move(text));
}

void
Report::addSummary(const std::string &key, double value)
{
    summary_.emplace_back(key, value);
}

void
Report::render(std::ostream &os) const
{
    if (have_cfg_)
        printBanner(os, id_, description_, cfg_);
    else
        os << id_ << ": " << description_ << "\n";

    for (const auto &table : tables_) {
        if (!table.title.empty())
            os << "\n" << table.title << "\n";
        TablePrinter printer(table.columns, table.width);
        printer.printHeader(os);
        for (const auto &row : table.rows) {
            if (row.rule)
                printer.printRule(os);
            else
                printer.printRow(os, row.cells);
        }
    }
    for (const auto &note : notes_)
        os << "\n" << note << "\n";
}

void
Report::writeJson(std::ostream &os, const SweepResult *result) const
{
    os << "{\"schema_version\": 1, \"experiment\": {\"id\": ";
    jsonEscape(os, id_);
    os << ", \"description\": ";
    jsonEscape(os, description_);
    os << "}, \"git_sha\": ";
    jsonEscape(os, gitSha());
    os << ", \"config_fingerprint\": ";
    if (have_cfg_)
        jsonEscape(os, configFingerprint(cfg_));
    else
        os << "null";

    os << ", \"jobs\": " << (result ? result->jobsUsed() : 0)
       << ", \"wall_seconds\": ";
    jsonNumber(os, result ? result->wallSeconds() : 0.0);

    os << ", \"runs\": [";
    if (result) {
        bool first = true;
        for (const auto &run : result->runs()) {
            os << (first ? "" : ", ");
            first = false;
            os << "{\"workload\": ";
            jsonEscape(os, run.workload);
            os << ", \"scheduler\": ";
            jsonEscape(os, run.scheduler);
            os << ", \"variant\": ";
            jsonEscape(os, run.variant);
            os << ", \"seed\": " << run.seed << ", \"wall_seconds\": ";
            jsonNumber(os, run.wallSeconds);
            os << ", \"stats\": ";
            statsJson(os, run.stats);
            os << ", \"extra\": {";
            bool first_extra = true;
            for (const auto &[key, value] : run.extra) {
                os << (first_extra ? "" : ", ");
                first_extra = false;
                jsonEscape(os, key);
                os << ": ";
                jsonNumber(os, value);
            }
            os << "}}";
        }
    }
    os << "]";

    os << ", \"summary\": {";
    for (std::size_t i = 0; i < summary_.size(); ++i) {
        os << (i ? ", " : "");
        jsonEscape(os, summary_[i].first);
        os << ": ";
        jsonNumber(os, summary_[i].second);
    }
    os << "}";

    os << ", \"tables\": [";
    bool first_table = true;
    for (const auto &table : tables_) {
        os << (first_table ? "" : ", ");
        first_table = false;
        os << "{\"title\": ";
        jsonEscape(os, table.title);
        os << ", \"columns\": [";
        for (std::size_t i = 0; i < table.columns.size(); ++i) {
            os << (i ? ", " : "");
            jsonEscape(os, table.columns[i]);
        }
        os << "], \"rows\": [";
        bool first_row = true;
        for (const auto &row : table.rows) {
            if (row.rule)
                continue;
            os << (first_row ? "" : ", ") << "[";
            first_row = false;
            for (std::size_t i = 0; i < row.cells.size(); ++i) {
                os << (i ? ", " : "");
                jsonEscape(os, row.cells[i]);
            }
            os << "]";
        }
        os << "]}";
    }
    os << "]}\n";
}

void
Report::writeJsonFile(const std::string &path,
                      const SweepResult *result) const
{
    std::ofstream os(path);
    if (!os)
        sim::fatal("cannot open '", path, "' for JSON output");
    writeJson(os, result);
}

std::string
configFingerprint(const system::SystemConfig &cfg)
{
    std::ostringstream text;
    cfg.print(text);
    // FNV-1a over the printed form: any knob that shows up in the
    // banner changes the fingerprint.
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const char c : text.str()) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ull;
    }
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0') << hash;
    return os.str();
}

std::string
gitSha()
{
    return GPUWALK_GIT_SHA;
}

void
statsJson(std::ostream &os, const system::RunStats &stats)
{
    os << "{\"runtime_ticks\": " << stats.runtimeTicks
       << ", \"stall_ticks\": " << stats.stallTicks
       << ", \"instructions\": " << stats.instructions
       << ", \"events_executed\": " << stats.eventsExecuted
       << ", \"app_finish_ticks\": ";
    jsonUintArray(os, stats.appFinishTicks);
    os << ", \"translation_requests\": " << stats.translationRequests
       << ", \"walk_requests\": " << stats.walkRequests
       << ", \"walks_completed\": " << stats.walksCompleted
       << ", \"avg_wavefronts_per_epoch\": ";
    jsonNumber(os, stats.avgWavefrontsPerEpoch);

    const auto &walks = stats.walks;
    os << ", \"walks\": {\"instructions_with_walks\": "
       << walks.instructionsWithWalks
       << ", \"multi_walk_instructions\": "
       << walks.multiWalkInstructions
       << ", \"interleaved_instructions\": "
       << walks.interleavedInstructions
       << ", \"interleaved_fraction\": ";
    jsonNumber(os, walks.interleavedFraction);
    os << ", \"total_walks\": " << walks.totalWalks
       << ", \"total_mem_accesses\": " << walks.totalMemAccesses
       << ", \"avg_first_completed_latency\": ";
    jsonNumber(os, walks.avgFirstCompletedLatency);
    os << ", \"avg_last_completed_latency\": ";
    jsonNumber(os, walks.avgLastCompletedLatency);
    os << ", \"avg_latency_gap\": ";
    jsonNumber(os, walks.avgLatencyGap);
    os << ", \"work_bucket_counts\": ";
    jsonUintArray(os, walks.workBucketCounts);
    os << ", \"work_bucket_fractions\": ";
    jsonDoubleArray(os, walks.workBucketFractions);
    os << "}";

    const auto dist =
        [&os](const iommu::LatencyBreakdownSummary::Dist &d) {
            os << "{\"bucket_counts\": ";
            jsonUintArray(os, d.bucketCounts);
            os << ", \"samples\": " << d.samples << ", \"avg\": ";
            jsonNumber(os, d.avg);
            os << "}";
        };
    const auto &lat = stats.latency;
    os << ", \"latency_breakdown\": {\"bucket_bounds\": ";
    jsonUintArray(os, iommu::latencyBucketBounds());
    os << ", \"queue_wait\": ";
    dist(lat.queueWait);
    os << ", \"walker_service\": ";
    dist(lat.walkerService);
    os << ", \"level_mem\": [";
    for (std::size_t l = 0; l < lat.levelMem.size(); ++l) {
        os << (l ? ", " : "");
        dist(lat.levelMem[l]);
    }
    os << "]}";

    os << ", \"traced\": " << (stats.traced ? "true" : "false");
    if (stats.traced) {
        os << ", \"trace_digest\": ";
        jsonEscape(os, trace::digestHex(stats.traceDigest));
        os << ", \"trace_events\": " << stats.traceEvents
           << ", \"trace_dropped\": " << stats.traceDropped;
    }

    os << ", \"audited\": " << (stats.audited ? "true" : "false");
    if (stats.audited) {
        os << ", \"audit\": {\"checks\": " << stats.auditChecks
           << ", \"violations\": " << stats.auditViolations
           << ", \"findings\": [";
        bool first = true;
        for (const auto &finding : stats.auditFindings) {
            os << (first ? "" : ", ");
            first = false;
            os << "{\"invariant\": ";
            jsonEscape(os, finding.invariant);
            os << ", \"phase\": ";
            jsonEscape(os, sim::toString(finding.phase));
            os << ", \"tick\": " << finding.tick << ", \"message\": ";
            jsonEscape(os, finding.message);
            os << "}";
        }
        os << "]}";
    }

    // Demand-paging runs only: fully resident stats JSON stays
    // byte-identical to the pre-GMMU writer.
    if (stats.gmmu.enabled) {
        const auto &g = stats.gmmu;
        os << ", \"gmmu\": {\"frame_cap\": " << g.frameCap
           << ", \"resident_peak\": " << g.residentPeak
           << ", \"resident_final\": " << g.residentFinal
           << ", \"faults_raised\": " << g.faultsRaised
           << ", \"faults_serviced\": " << g.faultsServiced
           << ", \"faults_coalesced\": " << g.faultsCoalesced
           << ", \"batches\": " << g.batches
           << ", \"pages_migrated\": " << g.pagesMigrated
           << ", \"pages_evicted\": " << g.pagesEvicted
           << ", \"promotions\": " << g.promotions
           << ", \"demotions\": " << g.demotions
           << ", \"service_retries\": " << g.serviceRetries
           << ", \"fault_latency\": {\"bucket_bounds\": ";
        jsonUintArray(os, vm::faultLatencyBucketBounds());
        os << ", \"bucket_counts\": ";
        jsonUintArray(os, g.latencyBucketCounts);
        os << ", \"samples\": " << g.latencySamples << ", \"avg\": ";
        jsonNumber(os, g.latencyAvg);
        os << "}}";
    }

    // Prefetch-enabled runs only: --prefetch=off stats JSON stays
    // byte-identical to the pre-prefetcher writer.
    if (stats.prefetch.enabled) {
        const auto &p = stats.prefetch;
        os << ", \"prefetch\": {\"policy\": ";
        jsonEscape(os, p.policy);
        os << ", \"issued\": " << p.issued
           << ", \"completed\": " << p.completed
           << ", \"useful\": " << p.useful
           << ", \"evicted_unused\": " << p.evictedUnused
           << ", \"unused_at_end\": " << p.unusedAtEnd
           << ", \"accuracy\": ";
        jsonNumber(os, p.accuracy);
        os << ", \"coverage\": ";
        jsonNumber(os, p.coverage);
        os << ", \"pollution\": ";
        jsonNumber(os, p.pollution);
        os << "}";
    }

    // Wasp runs only: with the feature off the speculative class is
    // structurally inert (all counters zero — test_wasp.cc), so
    // non-wasp stats JSON stays byte-identical to the pre-wasp writer.
    if (stats.leaderIssues || stats.spec.admitted
        || stats.spec.leaderWalks) {
        os << ", \"leader_issues\": " << stats.leaderIssues
           << ", \"spec\": {\"admitted\": " << stats.spec.admitted
           << ", \"dispatched\": " << stats.spec.dispatched
           << ", \"promoted\": " << stats.spec.promoted
           << ", \"dropped_stale\": " << stats.spec.droppedStale
           << ", \"leader_walks\": " << stats.spec.leaderWalks << "}";
    }

    // Multi-tenant runs only: single-tenant stats JSON stays
    // byte-identical to the pre-ASID writer.
    if (!stats.tenants.empty()) {
        os << ", \"tenants\": [";
        bool first = true;
        for (const auto &t : stats.tenants) {
            os << (first ? "" : ", ");
            first = false;
            os << "{\"ctx\": " << t.ctx
               << ", \"walk_requests\": " << t.walkRequests
               << ", \"walks_completed\": " << t.walksCompleted
               << ", \"dispatches\": " << t.dispatches
               << ", \"queue_wait_ticks\": " << t.queueWaitTicks
               << ", \"service_ticks\": " << t.serviceTicks
               << ", \"finish_tick\": " << t.finishTick << "}";
        }
        os << "]";
    }
    os << "}";
}

std::string
statsJsonString(const system::RunStats &stats)
{
    std::ostringstream os;
    statsJson(os, stats);
    return os.str();
}

} // namespace gpuwalk::exp
