#include "exp/metrics.hh"

#include <cmath>
#include <limits>

#include "sim/logging.hh"

namespace gpuwalk::exp {

namespace {

double
degenerate()
{
    return std::numeric_limits<double>::quiet_NaN();
}

} // namespace

double
speedup(const system::RunStats &test, const system::RunStats &base)
{
    // A degenerate point (a run that executed nothing) must not kill a
    // sweep that took hours: report NaN, which the tables print as-is
    // and the JSON writer emits as null, and let the reader decide.
    if (test.runtimeTicks == 0 || base.runtimeTicks == 0) {
        sim::warn("speedup: degenerate runtime (test=", test.runtimeTicks,
                  " base=", base.runtimeTicks, " ticks); reporting NaN");
        return degenerate();
    }
    return static_cast<double>(base.runtimeTicks)
           / static_cast<double>(test.runtimeTicks);
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty()) {
        sim::warn("geomean: no values; reporting NaN");
        return degenerate();
    }
    double log_sum = 0.0;
    for (double v : values) {
        // !(v > 0) rather than v <= 0 so NaN inputs land here too
        // instead of silently poisoning log_sum.
        if (!(v > 0.0)) {
            sim::warn("geomean: non-positive value ", v, "; reporting NaN");
            return degenerate();
        }
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
jainIndex(const std::vector<double> &values)
{
    if (values.empty()) {
        sim::warn("jainIndex: no values; reporting NaN");
        return degenerate();
    }
    double sum = 0.0;
    double sum_sq = 0.0;
    for (double v : values) {
        if (!(v > 0.0)) {
            sim::warn("jainIndex: non-positive value ", v,
                      "; reporting NaN");
            return degenerate();
        }
        sum += v;
        sum_sq += v * v;
    }
    return (sum * sum)
           / (static_cast<double>(values.size()) * sum_sq);
}

} // namespace gpuwalk::exp
