#include "exp/metrics.hh"

#include <cmath>

#include "sim/logging.hh"

namespace gpuwalk::exp {

double
speedup(const system::RunStats &test, const system::RunStats &base)
{
    GPUWALK_ASSERT(test.runtimeTicks > 0, "zero test runtime");
    return static_cast<double>(base.runtimeTicks)
           / static_cast<double>(test.runtimeTicks);
}

double
geomean(const std::vector<double> &values)
{
    GPUWALK_ASSERT(!values.empty(), "geomean of nothing");
    double log_sum = 0.0;
    for (double v : values) {
        GPUWALK_ASSERT(v > 0.0, "geomean needs positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace gpuwalk::exp
