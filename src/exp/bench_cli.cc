#include "exp/bench_cli.hh"

#include <cstdlib>
#include <iostream>

#include "sim/logging.hh"

namespace gpuwalk::exp {

namespace {

[[noreturn]] void
printHelp(const std::string &id, const std::string &description)
{
    std::cout << id << ": " << description << "\n\n"
              << "Flags:\n"
              << "  --jobs N     worker threads for the sweep "
                 "(default: all hardware threads;\n"
              << "               1 = serial reference execution)\n"
              << "  --sim-threads N  simulation threads inside each "
                 "run: 1 = classic serial\n"
              << "               engine (default), N > 1 = one "
                 "latency-decoupled domain group\n"
              << "               per thread, 0 = auto; results are "
                 "bit-identical at any value\n"
              << "  --json PATH  write structured results (per-run "
                 "stats, summary scalars,\n"
              << "               config fingerprint, git sha, wall "
                 "time) as JSON\n"
              << "  --trace-out PATH  record walk-lifecycle traces and "
                 "write one Chrome\n"
              << "               trace_event JSON per run, uniquified "
                 "from PATH\n"
              << "               (load in chrome://tracing or "
                 "ui.perfetto.dev)\n"
              << "  --trace-ring N  trace ring-buffer capacity in "
                 "events (default 1Mi)\n"
              << "  --audit      enable conservation auditing: every "
                 "run's invariants are\n"
              << "               checked at teardown and violations "
                 "land in the JSON output\n"
              << "  --audit-interval N  additionally check every N "
                 "ticks during the run\n"
              << "               (implies --audit)\n"
              << "  --oversubscription R  demand paging: pages fault "
                 "in on first touch and\n"
              << "               resident frames are capped at R x the "
                 "workload footprint\n"
              << "               (R <= 1; R < 1 forces eviction)\n"
              << "  --fault-latency N  host interrupt + runtime cost "
                 "per fault batch, in\n"
              << "               ticks (default 2000000; implies "
                 "--oversubscription 1.0)\n"
              << "  --migration-latency N  per-page CPU-GPU transfer "
                 "cost in ticks\n"
              << "               (default 400000)\n"
              << "  --fault-policy P  fault service order within the "
                 "GMMU: fcfs | sjf\n"
              << "  --gmmu-batch N  max faults serviced per host round "
                 "trip (default 8)\n"
              << "  --gmmu-evict P  victim policy at the frame cap: "
                 "lru | random\n"
              << "  --no-contiguity  disable the 2 MB contiguity "
                 "reservation + promotion\n"
              << "  --prefetch P  translation prefetch policy applied "
                 "to every run:\n"
              << "               off (default) | next (next-page) | "
                 "spp (signature-path\n"
              << "               lookahead)\n"
              << "  --prefetch-degree N  max speculative walks per "
                 "trigger (default 4)\n"
              << "  --wasp       Wasp wavefront scheduling applied to "
                 "every run: leader\n"
              << "               slots issue ahead and their walks are "
                 "classed speculative\n"
              << "  --wasp-leaders N  leader slots per CU (default 1; "
                 "implies --wasp)\n"
              << "  --wasp-distance N  followers' first-issue delay in "
                 "cycles\n"
              << "               (default 2048; implies --wasp)\n"
              << "  --spec-admission P  speculative-walk admission: "
                 "idle (default) |\n"
              << "               reserved (dedicated walkers) | budget "
                 "(tokens per window)\n"
              << "  --help       this text\n";
    std::exit(0);
}

} // namespace

BenchOptions
parseBenchArgs(int argc, char **argv, const std::string &id,
               const std::string &description)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            sim::fatal("unexpected argument '", arg,
                       "' (flags start with --; see --help)");
        arg = arg.substr(2);

        std::string value;
        bool have_value = false;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            have_value = true;
        }
        // "--flag value" spelling: consume the next argument.
        auto next_value = [&]() -> std::string {
            if (have_value)
                return value;
            if (i + 1 >= argc)
                sim::fatal("flag --", arg, " needs a value");
            return argv[++i];
        };

        if (arg == "help" || arg == "h") {
            printHelp(id, description);
        } else if (arg == "jobs") {
            const std::string v = next_value();
            char *end = nullptr;
            const unsigned long n = std::strtoul(v.c_str(), &end, 0);
            if (v.empty() || end == nullptr || *end != '\0')
                sim::fatal("--jobs needs a non-negative integer, got '",
                           v, "'");
            opts.runner.jobs = static_cast<unsigned>(n);
        } else if (arg == "sim-threads") {
            const std::string v = next_value();
            char *end = nullptr;
            const unsigned long n = std::strtoul(v.c_str(), &end, 0);
            if (v.empty() || end == nullptr || *end != '\0')
                sim::fatal("--sim-threads needs a non-negative "
                           "integer, got '", v, "'");
            opts.runner.simThreads = static_cast<unsigned>(n);
        } else if (arg == "json") {
            opts.jsonPath = next_value();
            if (opts.jsonPath.empty())
                sim::fatal("--json needs a file path");
        } else if (arg == "trace-out") {
            opts.runner.trace.outPath = next_value();
            if (opts.runner.trace.outPath.empty())
                sim::fatal("--trace-out needs a file path");
            opts.runner.trace.enabled = true;
        } else if (arg == "trace-ring") {
            const std::string v = next_value();
            char *end = nullptr;
            const unsigned long long n =
                std::strtoull(v.c_str(), &end, 0);
            if (v.empty() || end == nullptr || *end != '\0' || n == 0)
                sim::fatal("--trace-ring needs a positive integer, "
                           "got '", v, "'");
            opts.runner.trace.ringCapacity =
                static_cast<std::size_t>(n);
            opts.runner.trace.enabled = true;
        } else if (arg == "audit") {
            // Valueless flag; "--audit=..." is a spelling error.
            if (have_value)
                sim::fatal("--audit takes no value (use "
                           "--audit-interval N for periodic checks)");
            opts.runner.audit.enabled = true;
        } else if (arg == "audit-interval") {
            const std::string v = next_value();
            char *end = nullptr;
            const unsigned long long n =
                std::strtoull(v.c_str(), &end, 0);
            if (v.empty() || end == nullptr || *end != '\0' || n == 0)
                sim::fatal("--audit-interval needs a positive tick "
                           "count, got '", v, "'");
            opts.runner.audit.interval = static_cast<sim::Tick>(n);
            opts.runner.audit.enabled = true;
        } else if (arg == "oversubscription") {
            const std::string v = next_value();
            char *end = nullptr;
            const double r = std::strtod(v.c_str(), &end);
            if (v.empty() || end == nullptr || *end != '\0' || r <= 0.0
                || r > 1.0) {
                sim::fatal("--oversubscription needs a ratio in "
                           "(0, 1], got '", v, "'");
            }
            opts.runner.gmmu.oversubscription = r;
            opts.runner.gmmu.enabled = true;
        } else if (arg == "fault-latency") {
            const std::string v = next_value();
            char *end = nullptr;
            const unsigned long long n =
                std::strtoull(v.c_str(), &end, 0);
            if (v.empty() || end == nullptr || *end != '\0')
                sim::fatal("--fault-latency needs a tick count, got '",
                           v, "'");
            opts.runner.gmmu.faultLatency = static_cast<sim::Tick>(n);
            opts.runner.gmmu.enabled = true;
        } else if (arg == "migration-latency") {
            const std::string v = next_value();
            char *end = nullptr;
            const unsigned long long n =
                std::strtoull(v.c_str(), &end, 0);
            if (v.empty() || end == nullptr || *end != '\0')
                sim::fatal("--migration-latency needs a tick count, "
                           "got '", v, "'");
            opts.runner.gmmu.migrationLatency =
                static_cast<sim::Tick>(n);
            opts.runner.gmmu.enabled = true;
        } else if (arg == "fault-policy") {
            const std::string v = next_value();
            if (v == "fcfs") {
                opts.runner.gmmu.order = vm::FaultOrder::Fcfs;
            } else if (v == "sjf") {
                opts.runner.gmmu.order = vm::FaultOrder::Sjf;
            } else {
                sim::fatal("--fault-policy must be fcfs or sjf, got '",
                           v, "'");
            }
            opts.runner.gmmu.enabled = true;
        } else if (arg == "gmmu-batch") {
            const std::string v = next_value();
            char *end = nullptr;
            const unsigned long n = std::strtoul(v.c_str(), &end, 0);
            if (v.empty() || end == nullptr || *end != '\0' || n == 0)
                sim::fatal("--gmmu-batch needs a positive integer, "
                           "got '", v, "'");
            opts.runner.gmmu.batchSize = static_cast<unsigned>(n);
            opts.runner.gmmu.enabled = true;
        } else if (arg == "gmmu-evict") {
            const std::string v = next_value();
            if (v == "lru") {
                opts.runner.gmmu.evict = vm::EvictPolicy::Lru;
            } else if (v == "random") {
                opts.runner.gmmu.evict = vm::EvictPolicy::Random;
            } else {
                sim::fatal("--gmmu-evict must be lru or random, got '",
                           v, "'");
            }
            opts.runner.gmmu.enabled = true;
        } else if (arg == "no-contiguity") {
            if (have_value)
                sim::fatal("--no-contiguity takes no value");
            opts.runner.gmmu.contiguity = false;
            opts.runner.gmmu.enabled = true;
        } else if (arg == "prefetch") {
            opts.runner.prefetch.kind =
                iommu::prefetchKindFromString(next_value());
        } else if (arg == "prefetch-degree") {
            const std::string v = next_value();
            char *end = nullptr;
            const unsigned long n = std::strtoul(v.c_str(), &end, 0);
            if (v.empty() || end == nullptr || *end != '\0' || n == 0)
                sim::fatal("--prefetch-degree needs a positive "
                           "integer, got '", v, "'");
            opts.runner.prefetch.degree = static_cast<unsigned>(n);
        } else if (arg == "wasp") {
            if (have_value)
                sim::fatal("--wasp takes no value (use --wasp-leaders "
                           "/ --wasp-distance for the knobs)");
            opts.runner.wasp = true;
        } else if (arg == "wasp-leaders") {
            const std::string v = next_value();
            char *end = nullptr;
            const unsigned long n = std::strtoul(v.c_str(), &end, 0);
            if (v.empty() || end == nullptr || *end != '\0' || n == 0)
                sim::fatal("--wasp-leaders needs a positive integer, "
                           "got '", v, "'");
            opts.runner.waspLeaders = static_cast<unsigned>(n);
            opts.runner.wasp = true;
        } else if (arg == "wasp-distance") {
            const std::string v = next_value();
            char *end = nullptr;
            const unsigned long long n =
                std::strtoull(v.c_str(), &end, 0);
            if (v.empty() || end == nullptr || *end != '\0')
                sim::fatal("--wasp-distance needs a cycle count, "
                           "got '", v, "'");
            opts.runner.waspDistanceCycles =
                static_cast<sim::Cycles>(n);
            opts.runner.wasp = true;
        } else if (arg == "spec-admission") {
            opts.runner.specAdmission =
                iommu::specAdmissionFromString(next_value());
        } else {
            sim::fatal("unknown flag --", arg, " (see --help)");
        }
    }
    return opts;
}

} // namespace gpuwalk::exp
