/**
 * @file
 * Experiment reporting: the paper-style fixed-width console tables the
 * benches have always printed, plus a structured JSON rendition of the
 * same sweep (per-run statistics, derived summary scalars, config
 * fingerprint, git revision, wall time) for machine consumption.
 */

#ifndef GPUWALK_EXP_REPORT_HH
#define GPUWALK_EXP_REPORT_HH

#include <deque>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "exp/runner.hh"
#include "exp/table.hh"

namespace gpuwalk::exp {

/**
 * Collects one experiment's output — tables, notes, summary scalars —
 * then renders it as console text and/or structured JSON.
 */
class Report
{
  public:
    /** A titled fixed-width table under construction. */
    struct Table
    {
        std::string title;                 ///< "" = untitled
        std::vector<std::string> columns;
        unsigned width = 14;

        struct Row
        {
            std::vector<std::string> cells;
            bool rule = false;             ///< horizontal separator
        };
        std::vector<Row> rows;

        void addRow(std::vector<std::string> cells);
        /** Inserts a horizontal rule (e.g. before a GEOMEAN row). */
        void addRule();
    };

    /** Report with the standard config banner. */
    Report(std::string id, std::string description,
           const system::SystemConfig &cfg);

    /** Report without a config banner (e.g. Table II). */
    Report(std::string id, std::string description);

    /** Adds a table; the reference stays valid for the Report's life. */
    Table &addTable(std::vector<std::string> columns,
                    std::string title = "", unsigned width = 14);

    /** Free-form paragraph printed after the tables. */
    void addNote(std::string text);

    /** Derived scalar (geomean speedup, ...) for the JSON summary. */
    void addSummary(const std::string &key, double value);

    /** Banner + tables + notes, matching the historical bench output. */
    void render(std::ostream &os) const;

    /**
     * Structured JSON: experiment identity, git sha, config
     * fingerprint, per-run stats from @p result (null = no runs),
     * summary scalars, and the rendered tables as data.
     */
    void writeJson(std::ostream &os, const SweepResult *result) const;

    /** writeJson to @p path; fatal() if the file cannot be opened. */
    void writeJsonFile(const std::string &path,
                       const SweepResult *result) const;

  private:
    std::string id_;
    std::string description_;
    bool have_cfg_ = false;
    system::SystemConfig cfg_;
    std::deque<Table> tables_;  // deque: stable refs across addTable
    std::vector<std::string> notes_;
    std::vector<std::pair<std::string, double>> summary_;
};

/** FNV-1a hash of the config's printed form, as a hex string. */
std::string configFingerprint(const system::SystemConfig &cfg);

/** Git revision baked in at build time ("unknown" outside a repo). */
std::string gitSha();

/** One run's statistics as a JSON object (shared with the tests:
 *  byte-identical stats <=> byte-identical JSON). */
void statsJson(std::ostream &os, const system::RunStats &stats);
std::string statsJsonString(const system::RunStats &stats);

} // namespace gpuwalk::exp

#endif // GPUWALK_EXP_REPORT_HH
