/**
 * @file
 * Simulation time base.
 *
 * The simulator uses a picosecond tick base, like gem5: 1 tick = 1 ps.
 * All latencies in the system are ultimately expressed in ticks; the
 * Clock helper converts between a component's cycles and ticks.
 */

#ifndef GPUWALK_SIM_TICKS_HH
#define GPUWALK_SIM_TICKS_HH

#include <cstdint>

namespace gpuwalk::sim {

/** Simulation time, in picoseconds. */
using Tick = std::uint64_t;

/** A count of clock cycles of some component. */
using Cycles = std::uint64_t;

/** One nanosecond worth of ticks. */
constexpr Tick ticksPerNs = 1000;

/** Sentinel for "never" / "no deadline". */
constexpr Tick maxTick = ~Tick(0);

/**
 * Converts between a component clock domain's cycles and global ticks.
 *
 * The clock is defined by its period in ticks. The baseline GPU runs at
 * 2 GHz (500-tick period) and DDR3-1600 DRAM at 800 MHz (1250-tick
 * period), per Table I of the paper.
 */
class Clock
{
  public:
    /** @param period_ticks Clock period in ticks (picoseconds). */
    constexpr explicit Clock(Tick period_ticks) : period_(period_ticks) {}

    /** Builds a clock from a frequency in MHz. */
    static constexpr Clock
    fromMHz(std::uint64_t mhz)
    {
        return Clock(1'000'000 / mhz);
    }

    /** Clock period in ticks. */
    constexpr Tick period() const { return period_; }

    /** Converts a cycle count to a tick duration. */
    constexpr Tick toTicks(Cycles cycles) const { return cycles * period_; }

    /** Converts a tick duration to whole cycles (rounding down). */
    constexpr Cycles toCycles(Tick ticks) const { return ticks / period_; }

    /** Rounds @p when up to the next edge of this clock (>= when). */
    constexpr Tick
    nextEdge(Tick when) const
    {
        Tick rem = when % period_;
        return rem == 0 ? when : when + (period_ - rem);
    }

  private:
    Tick period_;
};

/** The baseline 2 GHz GPU clock (Table I). */
constexpr Clock gpuClock = Clock(500);

/** The baseline DDR3-1600 command clock, 800 MHz (Table I). */
constexpr Clock dramClock = Clock(1250);

} // namespace gpuwalk::sim

#endif // GPUWALK_SIM_TICKS_HH
