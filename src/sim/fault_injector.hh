/**
 * @file
 * Deterministic fault injection for audit tests.
 *
 * The conservation auditor (audit.hh) is only trustworthy if every
 * invariant it registers has been seen to fire. FaultInjector is the
 * seeded decision core behind that proof: port-boundary adapters
 * (tlb/fault_injection.hh, mem/fault_injection.hh) consult it on each
 * crossing and drop, delay, or duplicate exactly the crossing it
 * selects. Selection is either an explicit 0-based crossing index
 * (bit-reproducible by construction) or a Bernoulli draw from a
 * seeded sim::Rng (bit-reproducible per seed).
 *
 * Test-only: nothing in src/ outside the adapters includes this, and
 * no production configuration can enable it.
 */

#ifndef GPUWALK_SIM_FAULT_INJECTOR_HH
#define GPUWALK_SIM_FAULT_INJECTOR_HH

#include <cstdint>

#include "sim/rng.hh"
#include "sim/ticks.hh"

namespace gpuwalk::sim {

/** What to do to the selected port crossing. */
enum class FaultKind : std::uint8_t
{
    None,      ///< pass through untouched
    Drop,      ///< swallow the response: downstream completes, upstream
               ///< never hears back
    Delay,     ///< deliver the response Spec::delayTicks late
    Duplicate, ///< forward a phantom copy of the request (no callback)
};

inline const char *
toString(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None: return "none";
      case FaultKind::Drop: return "drop";
      case FaultKind::Delay: return "delay";
      case FaultKind::Duplicate: return "duplicate";
    }
    return "?";
}

/** Decides, per port crossing, whether and how to misbehave. */
class FaultInjector
{
  public:
    struct Spec
    {
        FaultKind kind = FaultKind::None;

        /**
         * Inject at the target-th crossing (0-based) — the default,
         * fully deterministic mode. Ignored when probability > 0.
         */
        std::uint64_t target = 0;

        /**
         * When > 0, inject at each crossing with this probability
         * instead, drawn from a sim::Rng seeded with @ref seed.
         */
        double probability = 0.0;

        /** Extra response latency for FaultKind::Delay. */
        Tick delayTicks = 0;

        /** Seed for the probabilistic mode. */
        std::uint64_t seed = 0x5eed;
    };

    explicit FaultInjector(Spec spec) : spec_(spec), rng_(spec.seed) {}

    /** Called once per crossing; returns the fault to apply to it. */
    FaultKind
    decide()
    {
        const std::uint64_t n = crossings_++;
        if (spec_.kind == FaultKind::None)
            return FaultKind::None;
        const bool hit = spec_.probability > 0.0
                             ? rng_.chance(spec_.probability)
                             : n == spec_.target;
        if (!hit)
            return FaultKind::None;
        ++injected_;
        return spec_.kind;
    }

    const Spec &spec() const { return spec_; }

    /** Crossings observed so far. */
    std::uint64_t crossings() const { return crossings_; }

    /** Faults actually injected so far. */
    std::uint64_t injected() const { return injected_; }

  private:
    Spec spec_;
    Rng rng_;
    std::uint64_t crossings_ = 0;
    std::uint64_t injected_ = 0;
};

} // namespace gpuwalk::sim

#endif // GPUWALK_SIM_FAULT_INJECTOR_HH
