/**
 * @file
 * Error and status reporting helpers, in the spirit of gem5's
 * base/logging.hh: panic() for internal invariant violations, fatal()
 * for user/configuration errors, warn()/inform() for status.
 */

#ifndef GPUWALK_SIM_LOGGING_HH
#define GPUWALK_SIM_LOGGING_HH

#include <sstream>
#include <string>

namespace gpuwalk::sim {

namespace detail {

/** Concatenates all arguments into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/**
 * Reports an internal simulator bug and aborts. Use for conditions that
 * must never happen regardless of user input.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl(detail::concat(std::forward<Args>(args)...));
}

/**
 * Reports an unrecoverable user/configuration error and exits cleanly.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...));
}

/** Prints a warning to stderr; simulation continues. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Prints an informational message to stderr. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** panic() unless @p cond holds. */
#define GPUWALK_ASSERT(cond, ...)                                          \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::gpuwalk::sim::panic("assertion '", #cond, "' failed at ",     \
                                  __FILE__, ":", __LINE__, ": ",            \
                                  ##__VA_ARGS__);                           \
        }                                                                   \
    } while (0)

} // namespace gpuwalk::sim

#endif // GPUWALK_SIM_LOGGING_HH
