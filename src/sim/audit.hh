/**
 * @file
 * End-of-run conservation auditing.
 *
 * Long sweeps are only as trustworthy as their bookkeeping: a leaked
 * merge entry or a never-drained walk buffer corrupts every derived
 * speedup without failing a single test. Components therefore register
 * named Invariant closures with a per-System Auditor, which evaluates
 * them at configurable tick intervals during a run and exhaustively at
 * teardown, after the event queue has drained. Checks are
 * observation-only: they read component state and never mutate it, so
 * an audit-enabled run simulates the exact same ticks as a plain one.
 *
 * A violation is recorded (and warned about immediately) rather than
 * fatal, so one broken identity does not mask the others: the full
 * list lands in RunStats and the report JSON, and callers decide
 * whether to fail.
 */

#ifndef GPUWALK_SIM_AUDIT_HH
#define GPUWALK_SIM_AUDIT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace gpuwalk::sim {

/** Audit knobs (off by default; excluded from config fingerprints). */
struct AuditConfig
{
    /** Master switch: when false, no Auditor is built at all. */
    bool enabled = false;

    /**
     * Tick period of in-run checks; 0 means teardown-only. Periodic
     * checks use weaker identities (in-flight work is legal mid-run)
     * but catch leaks millions of events before the end of the run.
     */
    Tick interval = 0;
};

/** When a check ran, which decides how strict it may be. */
enum class AuditPhase : std::uint8_t
{
    Periodic, ///< mid-run: in-flight work is legal
    Final,    ///< teardown, event queue drained: everything conserved
};

/** Short name of @p phase ("periodic" / "final"). */
const char *toString(AuditPhase phase);

/** One recorded invariant violation. */
struct AuditViolation
{
    std::string invariant; ///< registered name, e.g. "iommu.buffer_drained"
    std::string message;   ///< what the check observed
    Tick tick = 0;         ///< simulated time of the check
    AuditPhase phase = AuditPhase::Final;
};

class Auditor;

/**
 * Handed to each invariant closure per evaluation. Checks read the
 * phase to pick the right strictness and report through fail() /
 * require(); everything else (naming, timestamps, warning) is
 * attached here so closures stay one-liners.
 */
class AuditContext
{
  public:
    /** Phase of this evaluation. */
    AuditPhase phase() const { return phase_; }

    /** True at teardown, when all in-flight state must be drained. */
    bool final() const { return phase_ == AuditPhase::Final; }

    /** Simulated time of this evaluation. */
    Tick now() const { return now_; }

    /** Records a violation of the current invariant. */
    template <typename... Args>
    void
    fail(Args &&...args)
    {
        record(detail::concat(std::forward<Args>(args)...));
    }

    /** fail(args...) unless @p cond holds. @return cond. */
    template <typename... Args>
    bool
    require(bool cond, Args &&...args)
    {
        if (!cond)
            fail(std::forward<Args>(args)...);
        return cond;
    }

  private:
    friend class Auditor;

    AuditContext(Auditor &auditor, AuditPhase phase, Tick now)
        : auditor_(auditor), phase_(phase), now_(now)
    {}

    void record(std::string message);

    Auditor &auditor_;
    AuditPhase phase_;
    Tick now_;
    const std::string *invariant_ = nullptr;
};

/**
 * The registry and evaluator of conservation invariants.
 *
 * One Auditor per System; components register closures at
 * construction time (registerInvariants hooks) and the System drives
 * check() from a periodic event and once after the run drains.
 */
class Auditor
{
  public:
    /** An invariant closure; called once per check() evaluation. */
    using Check = std::function<void(AuditContext &)>;

    /** Registers @p check under @p name (shown in violations). */
    void
    registerInvariant(std::string name, Check check)
    {
        invariants_.push_back(
            {std::move(name), std::move(check)});
    }

    /**
     * Evaluates every registered invariant for @p phase at simulated
     * time @p now. @return violations recorded by this evaluation.
     */
    std::size_t check(AuditPhase phase, Tick now);

    /** All violations recorded so far, in evaluation order. */
    const std::vector<AuditViolation> &violations() const
    {
        return violations_;
    }

    /** True while no invariant has ever failed. */
    bool clean() const { return violations_.empty(); }

    /** Registered invariants. */
    std::size_t invariantCount() const { return invariants_.size(); }

    /** Total invariant evaluations across all check() calls. */
    std::uint64_t checksRun() const { return checksRun_; }

    /** Violations discarded past the storage cap (still counted). */
    std::uint64_t violationsDropped() const { return dropped_; }

    /** Total violations recorded, including dropped ones. */
    std::uint64_t violationCount() const
    {
        return violations_.size() + dropped_;
    }

  private:
    friend class AuditContext;

    struct Invariant
    {
        std::string name;
        Check check;
    };

    /** A persistent violation re-fires every periodic check; cap the
     *  stored list so a long run cannot hoard unbounded messages. */
    static constexpr std::size_t maxStoredViolations = 256;

    void record(const std::string &name, std::string message,
                AuditPhase phase, Tick now);

    std::vector<Invariant> invariants_;
    std::vector<AuditViolation> violations_;
    std::uint64_t checksRun_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace gpuwalk::sim

#endif // GPUWALK_SIM_AUDIT_HH
