/**
 * @file
 * Open-addressed hash map for the simulator's hot lookup tables.
 *
 * The in-flight tracking tables (TLB miss merges, cache MSHRs, CU
 * instruction book-keeping, backing-store frame index, per-instruction
 * metrics) all key small trivially-hashable integers and live on the
 * per-event hot path. std::unordered_map costs one heap node per
 * element plus a pointer chase per probe; this map keeps every element
 * in one contiguous slab (a flat slot array that rehashes by doubling),
 * probes linearly from a strongly mixed home slot, and erases with
 * backward shifting, so there are no tombstones and no per-node
 * allocation — the same scan-avoidance discipline the pick indexes
 * apply to the walk buffer.
 *
 * Determinism: iteration order is a function of the key set and the
 * insertion/erasure history only (fixed hash, no randomized seed), so
 * runs replay identically across hosts and standard library versions.
 *
 * Requirements on Key/T: default-constructible and move-assignable
 * (backward-shift erase and rehash relocate elements). References and
 * iterators are invalidated by any insert (rehash) or erase (shift);
 * callers must re-find by key across mutations, which every migrated
 * call site already did under std::unordered_map.
 */

#ifndef GPUWALK_SIM_FLAT_MAP_HH
#define GPUWALK_SIM_FLAT_MAP_HH

#include <bit>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/logging.hh"

namespace gpuwalk::sim {

/**
 * Default hash: the splitmix64 finalizer. Full-avalanche mixing keeps
 * linear probing's clusters short even for the arithmetic key
 * sequences the simulator produces (page-aligned addresses, dense
 * instruction IDs).
 */
struct FlatHash
{
    std::uint64_t
    operator()(std::uint64_t x) const
    {
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ull;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebull;
        x ^= x >> 31;
        return x;
    }
};

/** Open-addressed hash map: linear probing, backward-shift erase. */
template <typename Key, typename T, typename Hash = FlatHash>
class FlatMap
{
  public:
    using value_type = std::pair<Key, T>;

    template <bool Const>
    class Iter
    {
        using MapPtr =
            std::conditional_t<Const, const FlatMap *, FlatMap *>;
        using Ref = std::conditional_t<Const, const value_type &,
                                       value_type &>;
        using Ptr = std::conditional_t<Const, const value_type *,
                                       value_type *>;

      public:
        Iter() = default;
        Iter(MapPtr map, std::size_t i) : map_(map), i_(i) {}

        /** Non-const -> const conversion. */
        template <bool C = Const, typename = std::enable_if_t<C>>
        Iter(const Iter<false> &other)
            : map_(other.map_), i_(other.i_)
        {}

        Ref operator*() const { return map_->slots_[i_]; }
        Ptr operator->() const { return &map_->slots_[i_]; }

        Iter &
        operator++()
        {
            ++i_;
            skipToOccupied();
            return *this;
        }

        friend bool
        operator==(const Iter &a, const Iter &b)
        {
            return a.i_ == b.i_;
        }
        friend bool
        operator!=(const Iter &a, const Iter &b)
        {
            return a.i_ != b.i_;
        }

      private:
        friend class FlatMap;

        void
        skipToOccupied()
        {
            while (i_ < map_->used_.size() && !map_->used_[i_])
                ++i_;
        }

        MapPtr map_ = nullptr;
        std::size_t i_ = 0;
    };

    using iterator = Iter<false>;
    using const_iterator = Iter<true>;

    FlatMap() = default;

    FlatMap(FlatMap &&) = default;
    FlatMap &operator=(FlatMap &&) = default;
    FlatMap(const FlatMap &) = default;
    FlatMap &operator=(const FlatMap &) = default;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Pre-sizes so @p n elements fit without rehashing. */
    void
    reserve(std::size_t n)
    {
        const std::size_t needed = requiredCapacity(n);
        if (needed > slots_.size())
            rehash(needed);
    }

    iterator
    begin()
    {
        iterator it(this, 0);
        it.skipToOccupied();
        return it;
    }
    const_iterator
    begin() const
    {
        const_iterator it(this, 0);
        it.skipToOccupied();
        return it;
    }
    iterator end() { return iterator(this, slots_.size()); }
    const_iterator end() const
    {
        return const_iterator(this, slots_.size());
    }

    iterator
    find(const Key &key)
    {
        const std::size_t i = probeFor(key);
        return i == npos ? end() : iterator(this, i);
    }
    const_iterator
    find(const Key &key) const
    {
        const std::size_t i = probeFor(key);
        return i == npos ? end() : const_iterator(this, i);
    }

    bool contains(const Key &key) const { return probeFor(key) != npos; }

    T &
    at(const Key &key)
    {
        const std::size_t i = probeFor(key);
        GPUWALK_ASSERT(i != npos, "FlatMap::at: missing key");
        return slots_[i].second;
    }
    const T &
    at(const Key &key) const
    {
        const std::size_t i = probeFor(key);
        GPUWALK_ASSERT(i != npos, "FlatMap::at: missing key");
        return slots_[i].second;
    }

    /** Inserts default-constructed value if @p key is absent. */
    T &operator[](const Key &key) { return try_emplace(key).first->second; }

    /** Inserts (key, T(args...)) if absent; no-op on a present key. */
    template <typename... Args>
    std::pair<iterator, bool>
    try_emplace(const Key &key, Args &&...args)
    {
        if (const std::size_t i = probeFor(key); i != npos)
            return {iterator(this, i), false};
        growIfNeeded();
        std::size_t i = homeSlot(key);
        while (used_[i])
            i = (i + 1) & mask_;
        slots_[i].first = key;
        slots_[i].second = T(std::forward<Args>(args)...);
        used_[i] = 1;
        ++size_;
        return {iterator(this, i), true};
    }

    /** unordered_map-compatible spelling of try_emplace. */
    template <typename V>
    std::pair<iterator, bool>
    emplace(const Key &key, V &&value)
    {
        return try_emplace(key, std::forward<V>(value));
    }

    /** Erases the element at @p it. Invalidates iterators/references. */
    void
    erase(iterator it)
    {
        GPUWALK_ASSERT(it.i_ < used_.size() && used_[it.i_],
                       "FlatMap::erase: bad iterator");
        eraseSlot(it.i_);
    }

    /** @return the number of elements removed (0 or 1). */
    std::size_t
    erase(const Key &key)
    {
        const std::size_t i = probeFor(key);
        if (i == npos)
            return 0;
        eraseSlot(i);
        return 1;
    }

    void
    clear()
    {
        if (size_ == 0)
            return;
        for (std::size_t i = 0; i < used_.size(); ++i) {
            if (used_[i]) {
                slots_[i] = value_type{};
                used_[i] = 0;
            }
        }
        size_ = 0;
    }

  private:
    static constexpr std::size_t npos = ~std::size_t{0};
    static constexpr std::size_t minCapacity = 16;

    static std::size_t
    requiredCapacity(std::size_t n)
    {
        // Max load factor 3/4 keeps linear-probe clusters short.
        std::size_t cap = minCapacity;
        while (n * 4 > cap * 3)
            cap <<= 1;
        return cap;
    }

    std::size_t
    homeSlot(const Key &key) const
    {
        return static_cast<std::size_t>(
                   Hash{}(static_cast<std::uint64_t>(key)))
               & mask_;
    }

    /** Slot holding @p key, or npos. */
    std::size_t
    probeFor(const Key &key) const
    {
        if (slots_.empty())
            return npos;
        std::size_t i = homeSlot(key);
        while (used_[i]) {
            if (slots_[i].first == key)
                return i;
            i = (i + 1) & mask_;
        }
        return npos;
    }

    void
    growIfNeeded()
    {
        if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3)
            rehash(slots_.empty() ? minCapacity : slots_.size() * 2);
    }

    void
    rehash(std::size_t new_cap)
    {
        // Checked here, not at class scope: nested mapped types with
        // default member initializers only become default-constructible
        // once their enclosing class is complete.
        static_assert(std::is_default_constructible_v<Key>
                          && std::is_default_constructible_v<T>,
                      "FlatMap slots are kept default-constructed");
        GPUWALK_ASSERT(std::has_single_bit(new_cap),
                       "FlatMap capacity must be a power of two");
        std::vector<value_type> old_slots = std::move(slots_);
        std::vector<std::uint8_t> old_used = std::move(used_);
        slots_.assign(new_cap, value_type{});
        used_.assign(new_cap, 0);
        mask_ = new_cap - 1;
        for (std::size_t i = 0; i < old_slots.size(); ++i) {
            if (!old_used[i])
                continue;
            std::size_t j = homeSlot(old_slots[i].first);
            while (used_[j])
                j = (j + 1) & mask_;
            slots_[j] = std::move(old_slots[i]);
            used_[j] = 1;
        }
    }

    /** Knuth algorithm R: shift the probe chain back over the hole so
     *  no tombstones accumulate. */
    void
    eraseSlot(std::size_t hole)
    {
        std::size_t j = hole;
        for (;;) {
            j = (j + 1) & mask_;
            if (!used_[j])
                break;
            const std::size_t home = homeSlot(slots_[j].first);
            // Move j into the hole unless its home lies cyclically
            // inside (hole, j] — then it is already as close to home
            // as the probe chain allows.
            if (((j - home) & mask_) >= ((j - hole) & mask_)) {
                slots_[hole] = std::move(slots_[j]);
                hole = j;
            }
        }
        slots_[hole] = value_type{};
        used_[hole] = 0;
        --size_;
    }

    std::vector<value_type> slots_;
    std::vector<std::uint8_t> used_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

} // namespace gpuwalk::sim

#endif // GPUWALK_SIM_FLAT_MAP_HH
