#include "sim/debug.hh"

#include <cstdlib>
#include <set>

namespace gpuwalk::sim::debug {

namespace {

/** Parses GPUWALK_DEBUG once into a flag set. */
const std::set<std::string> &
activeFlags()
{
    static const std::set<std::string> flags = [] {
        std::set<std::string> out;
        const char *env = std::getenv("GPUWALK_DEBUG");
        if (!env)
            return out;
        std::string token;
        for (const char *p = env;; ++p) {
            if (*p == ',' || *p == '\0') {
                if (!token.empty())
                    out.insert(token);
                token.clear();
                if (*p == '\0')
                    break;
            } else if (*p != ' ') {
                token += *p;
            }
        }
        return out;
    }();
    return flags;
}

} // namespace

bool
enabled(const std::string &flag)
{
    const auto &flags = activeFlags();
    if (flags.empty())
        return false;
    return flags.count("all") > 0 || flags.count(flag) > 0;
}

namespace detail {

void
emit(const std::string &flag, Tick now, const std::string &msg)
{
    std::cerr << now << ": [" << flag << "] " << msg << "\n";
}

} // namespace detail

} // namespace gpuwalk::sim::debug
