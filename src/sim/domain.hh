/**
 * @file
 * Latency-decoupled simulation domains.
 *
 * A Domain is a named partition of the simulated system that owns its
 * own calendar EventQueue: every component assigned to the domain
 * schedules on that queue, and every interaction with a component in
 * another domain is routed through a typed Channel (sim/port.hh)
 * whose fixed minimum latency becomes the edge's conservative
 * lookahead. The DomainRunner (sim/domain_runner.hh) executes the
 * resulting domain graph: serially when --sim-threads 1 (all domains
 * share one queue and the channels pass straight through), or one
 * domain group per thread under conservative synchronization
 * otherwise.
 */

#ifndef GPUWALK_SIM_DOMAIN_HH
#define GPUWALK_SIM_DOMAIN_HH

#include <string>

#include "sim/event_queue.hh"

namespace gpuwalk::sim {

class ChannelBase;

/** One latency-decoupled partition: a name and its event queue. */
struct Domain
{
    unsigned id = 0;
    std::string name;
    EventQueue *eq = nullptr;
};

/**
 * A directed channel between two domains. The channel's minLatency()
 * is the edge's lookahead: the destination may safely execute every
 * event strictly before src.clock + lookahead, because no message the
 * source has yet to send can be delivered earlier than that.
 */
struct DomainEdge
{
    unsigned src = 0;
    unsigned dst = 0;
    ChannelBase *channel = nullptr;
};

} // namespace gpuwalk::sim

#endif // GPUWALK_SIM_DOMAIN_HH
