/**
 * @file
 * Flag-gated debug tracing, in the spirit of gem5's DPRINTF.
 *
 * Set GPUWALK_DEBUG to a comma-separated flag list to stream
 * component events to stderr with their simulated timestamps:
 *
 *   GPUWALK_DEBUG=walks,sched ./build/tools/gpuwalk --workload=MVT
 *   GPUWALK_DEBUG=all ...
 *
 * Flags used by the library: "walks" (walker start/finish), "sched"
 * (buffer admission and dispatch decisions), "tlb" (IOMMU TLB
 * hits/misses), "dram" (memory controller issue), "gpu" (instruction
 * issue/retire). Tracing is off (and costs one predictable branch)
 * unless the environment variable names the flag.
 */

#ifndef GPUWALK_SIM_DEBUG_HH
#define GPUWALK_SIM_DEBUG_HH

#include <iostream>
#include <sstream>
#include <string>

#include "sim/ticks.hh"

namespace gpuwalk::sim::debug {

/** True if GPUWALK_DEBUG contains @p flag (or "all"). */
bool enabled(const std::string &flag);

namespace detail {
void emit(const std::string &flag, Tick now, const std::string &msg);
} // namespace detail

/**
 * Emits "tick: [flag] message" to stderr when @p flag is enabled.
 * Arguments are formatted via operator<< only when tracing is on.
 */
template <typename... Args>
void
log(const std::string &flag, Tick now, Args &&...args)
{
    if (!enabled(flag))
        return;
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    detail::emit(flag, now, os.str());
}

} // namespace gpuwalk::sim::debug

#endif // GPUWALK_SIM_DEBUG_HH
