/**
 * @file
 * Typed ports/channels carrying messages across latency-decoupled
 * domains (sim/domain.hh).
 *
 * Every cross-component call that crosses a fixed-latency boundary —
 * GPU TLB hierarchy → IOMMU, caches/walkers → DRAM, DRAM → completion
 * callbacks — is routed through a Channel, which makes the crossing
 * visible, timestamped, and countable (sent/delivered conservation is
 * an audit invariant), and carries the link latency that the
 * conservative parallel executor (sim/domain_runner.hh) uses as the
 * edge's lookahead.
 *
 * Serial mode (the default) preserves the pre-channel event pattern
 * bit-exactly: a positive-latency send schedules exactly one pooled
 * callable on the shared queue — the same single event the direct
 * call used to schedule, allocated at the same point in execution, so
 * it draws the same insertion sequence — and a same-tick send is a
 * direct synchronous call, just like the nested call it replaces.
 * The golden digests (tests/test_digest_golden.cc) pin this down.
 *
 * Parallel mode turns sends into mutex-protected inbox posts. The
 * destination domain drains its inboxes into its own queue via
 * scheduleInjected() with a composite order key allocated by the
 * *sending* queue: positive-latency messages use the send-tick key
 * (where the serial run allocated the event) and same-tick messages
 * use the sending event's own key plus a call index (where the serial
 * run made the nested call). Keys depend only on each domain's
 * deterministic execution, never on thread timing.
 */

#ifndef GPUWALK_SIM_PORT_HH
#define GPUWALK_SIM_PORT_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace gpuwalk::sim {

/**
 * Message-type-erased channel face: what the domain runner and the
 * audit invariants need — identity, lookahead, conservation counters,
 * and inbox draining.
 */
class ChannelBase
{
  public:
    ChannelBase(std::string name, Tick latency, Tick min_latency)
        : name_(std::move(name)), latency_(latency),
          minLatency_(min_latency)
    {}

    ChannelBase(const ChannelBase &) = delete;
    ChannelBase &operator=(const ChannelBase &) = delete;
    virtual ~ChannelBase() = default;

    const std::string &name() const { return name_; }

    /** Link latency added by send() (sendAt() callers pick their own). */
    Tick latency() const { return latency_; }

    /**
     * Lower bound on (delivery tick - send tick) over every message
     * this channel can carry: the edge's conservative lookahead.
     */
    Tick minLatency() const { return minLatency_; }

    /** Messages accepted for transmission. */
    std::uint64_t
    sent() const
    {
        return sent_.load(std::memory_order_acquire);
    }

    /** Messages handed to the destination's deliver callback. */
    std::uint64_t
    delivered() const
    {
        return delivered_.load(std::memory_order_acquire);
    }

    /**
     * Messages sent with zero in-flight time (delivery tick == send
     * tick). A serial run delivers these as nested synchronous calls
     * (no event); a parallel run injects an event per message — this
     * counter is what reconciles eventsExecuted between the two.
     */
    std::uint64_t
    sameTickSent() const
    {
        return sameTick_.load(std::memory_order_acquire);
    }

    /** True when no posted message awaits draining (parallel mode). */
    bool
    inboxEmpty() const
    {
        return inboxSize_.load(std::memory_order_acquire) == 0;
    }

    /**
     * Moves every posted message into the destination queue @p eq as
     * injected events (parallel mode only). Runs on the destination
     * domain's thread. @return messages drained.
     */
    virtual std::size_t drainTo(EventQueue &eq) = 0;

  protected:
    const std::string name_;
    const Tick latency_;
    const Tick minLatency_;
    std::atomic<std::uint64_t> sent_{0};
    std::atomic<std::uint64_t> delivered_{0};
    std::atomic<std::uint64_t> sameTick_{0};
    std::atomic<std::size_t> inboxSize_{0};
};

/**
 * A typed, unidirectional, latency-carrying message channel.
 *
 * Wiring (system::System does this once at construction):
 *
 *     Channel<Msg> ch("name", latency, minLatency);
 *     ch.bind(srcQueue, dstQueue);          // same queue when serial
 *     ch.onDeliver([&](Msg &&m) { ... });   // runs in dst's domain
 *     ch.setParallel(true);                 // omit for serial mode
 */
template <typename Msg>
class Channel final : public ChannelBase
{
  public:
    /**
     * @param name For audit findings and debugging.
     * @param latency Added by send(); also the default minLatency.
     * @param min_latency Edge lookahead when sendAt() can deliver
     *        sooner than @p latency (e.g. same-tick completions).
     */
    explicit Channel(std::string name, Tick latency,
                     Tick min_latency = maxTick)
        : ChannelBase(std::move(name), latency,
                      min_latency == maxTick ? latency : min_latency)
    {}

    /** Attaches the sending and receiving queues (equal when serial). */
    void
    bind(EventQueue &src, EventQueue &dst)
    {
        src_ = &src;
        dst_ = &dst;
    }

    /** Sets the destination-side handler. Must outlive the channel. */
    template <typename Fn>
    void
    onDeliver(Fn &&fn)
    {
        deliver_ = std::forward<Fn>(fn);
    }

    /** Switches between serial pass-through and inbox posting. */
    void setParallel(bool on) { parallel_ = on; }
    bool parallel() const { return parallel_; }

    /** Sends @p m with the channel's fixed latency. */
    void
    send(Msg m)
    {
        sendAt(src_->now() + latency_, std::move(m));
    }

    /** Sends @p m for immediate (same-tick) delivery. */
    void
    sendNow(Msg m)
    {
        sendAt(src_->now(), std::move(m));
    }

    /**
     * Sends @p m for delivery at absolute tick @p when (>= the source
     * queue's current time; @p when - now must be >= minLatency()).
     */
    void
    sendAt(Tick when, Msg m)
    {
        const Tick now = src_->now();
        GPUWALK_ASSERT(when >= now, "channel '", name_,
                       "' sending into the past");
        GPUWALK_ASSERT(when - now >= minLatency_, "channel '", name_,
                       "' violates its minimum latency (", when - now,
                       " < ", minLatency_, ")");
        sent_.fetch_add(1, std::memory_order_release);
        const bool same_tick = when == now;
        if (same_tick)
            sameTick_.fetch_add(1, std::memory_order_relaxed);
        if (!parallel_) {
            if (same_tick) {
                // The serial run's nested synchronous call.
                deliver_(std::move(m));
                delivered_.fetch_add(1, std::memory_order_release);
            } else {
                // Exactly one pooled event, allocated here — the same
                // event the pre-channel code scheduled at this point.
                src_->schedule(when, [this, m = std::move(m)]() mutable {
                    deliver_(std::move(m));
                    delivered_.fetch_add(1, std::memory_order_release);
                });
            }
            return;
        }
        // Same-tick messages are the serial run's nested synchronous
        // calls: they inherit the sending event's key (plus a call
        // index) *and* its spawn lineage, so they sort — and spawn
        // further events — exactly where the serial call ran.
        const std::uint64_t key =
            same_tick ? src_->allocNestedKey() : src_->allocOrderKey();
        const EventQueue::Lineage lineage =
            same_tick ? src_->cursorLineage() : EventQueue::Lineage{};
        {
            std::lock_guard<std::mutex> lock(mu_);
            inbox_.push_back(Pending{when, key, lineage, std::move(m)});
        }
        inboxSize_.fetch_add(1, std::memory_order_release);
    }

    std::size_t
    drainTo(EventQueue &eq) override
    {
        GPUWALK_ASSERT(&eq == dst_, "channel '", name_,
                       "' drained into a foreign queue");
        if (inboxEmpty())
            return 0;
        std::vector<Pending> batch;
        {
            std::lock_guard<std::mutex> lock(mu_);
            batch.swap(inbox_);
        }
        inboxSize_.fetch_sub(batch.size(), std::memory_order_release);
        for (Pending &p : batch) {
            eq.scheduleInjected(
                p.when, p.key,
                [this, m = std::move(p.msg)]() mutable {
                    deliver_(std::move(m));
                    delivered_.fetch_add(1, std::memory_order_release);
                },
                EventPriority::Default, p.lineage);
        }
        return batch.size();
    }

  private:
    struct Pending
    {
        Tick when;
        std::uint64_t key;
        EventQueue::Lineage lineage;
        Msg msg;
    };

    EventQueue *src_ = nullptr;
    EventQueue *dst_ = nullptr;
    std::function<void(Msg &&)> deliver_;
    bool parallel_ = false;
    std::mutex mu_;
    std::vector<Pending> inbox_;
};

} // namespace gpuwalk::sim

#endif // GPUWALK_SIM_PORT_HH
