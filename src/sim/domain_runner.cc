#include "sim/domain_runner.hh"

#include <algorithm>
#include <thread>

#include "sim/logging.hh"

namespace gpuwalk::sim {

/** Per-domain runtime state shared between worker and coordinator. */
struct DomainRunner::DomainState
{
    Domain dom;

    /** Edges delivering into this domain (horizon + drain set). */
    std::vector<const DomainEdge *> in;

    /**
     * Published simulated time: every event this domain will ever
     * execute from now on has tick >= clock. Monotone.
     */
    std::atomic<Tick> clock{0};

    /** No pending local events and every in-inbox empty. */
    std::atomic<bool> idle{false};
};

DomainRunner::DomainRunner(std::vector<Domain> domains,
                           std::vector<DomainEdge> edges,
                           unsigned threads)
    : domains_(std::move(domains)), edges_(std::move(edges))
{
    GPUWALK_ASSERT(!domains_.empty(), "domain runner with no domains");
    states_.reserve(domains_.size());
    for (std::size_t i = 0; i < domains_.size(); ++i) {
        GPUWALK_ASSERT(domains_[i].id == i,
                       "domain ids must be dense from 0");
        GPUWALK_ASSERT(domains_[i].eq != nullptr, "domain '",
                       domains_[i].name, "' has no event queue");
        auto st = std::make_unique<DomainState>();
        st->dom = domains_[i];
        states_.push_back(std::move(st));
    }
    for (const DomainEdge &e : edges_) {
        GPUWALK_ASSERT(e.src < domains_.size()
                           && e.dst < domains_.size(),
                       "edge references an unknown domain");
        GPUWALK_ASSERT(e.channel != nullptr, "edge with no channel");
        states_[e.dst]->in.push_back(&e);
    }
    threads_ = resolveThreads(threads, domains_.size());
}

DomainRunner::~DomainRunner() = default;

unsigned
DomainRunner::resolveThreads(unsigned requested, std::size_t domains)
{
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    unsigned t = requested == 0 ? hw : requested;
    t = std::min<unsigned>(t, static_cast<unsigned>(domains));
    return std::max(1u, t);
}

bool
DomainRunner::stepDomain(DomainState &st)
{
    // 1. Horizon from the in-neighbours' published clocks. Reading the
    // clock *before* draining is what makes the drain complete: every
    // message that can be delivered below the horizon was posted
    // before its sender published the clock we just read.
    Tick horizon = maxTick;
    for (const DomainEdge *e : st.in) {
        const Tick src_clock =
            states_[e->src]->clock.load(std::memory_order_acquire);
        horizon = std::min(
            horizon, edgeHorizon(src_clock, e->channel->minLatency()));
    }

    // 2. Drain in-channel inboxes into the local queue.
    std::size_t drained = 0;
    for (const DomainEdge *e : st.in)
        drained += e->channel->drainTo(*st.dom.eq);

    // 3. Execute strictly below the horizon.
    const std::uint64_t n = st.dom.eq->runUntil(horizon);
    if (n > 0) {
        const std::uint64_t total =
            executed_.fetch_add(n, std::memory_order_relaxed) + n;
        if (total > maxEvents_) {
            overflow_.store(true, std::memory_order_release);
            stop_.store(true, std::memory_order_release);
        }
    }

    // 4. Publish the new clock (release: after the sends those events
    // posted). The horizon is monotone because the source clocks are.
    bool progress = n > 0 || drained > 0;
    if (horizon > st.clock.load(std::memory_order_relaxed)) {
        st.clock.store(horizon, std::memory_order_release);
        progress = true;
    }

    Tick next = 0;
    bool idle = !st.dom.eq->peekNext(next);
    if (idle) {
        for (const DomainEdge *e : st.in) {
            if (!e->channel->inboxEmpty()) {
                idle = false;
                break;
            }
        }
    }
    st.idle.store(idle, std::memory_order_release);
    return progress;
}

void
DomainRunner::workerLoop(unsigned worker)
{
    // Domains are dealt round-robin over the workers; one worker may
    // own several (e.g. 2 threads over 3 domains).
    while (!stop_.load(std::memory_order_acquire)) {
        bool progress = false;
        for (std::size_t d = worker; d < states_.size(); d += threads_)
            progress = stepDomain(*states_[d]) || progress;
        if (!progress)
            std::this_thread::yield();
    }
}

bool
DomainRunner::scanQuiescent(std::uint64_t &tally_out) const
{
    // Read delivered before sent: an in-flight message then shows up
    // as sent > delivered rather than being missed.
    bool quiescent = true;
    std::uint64_t tally = executed_.load(std::memory_order_acquire);
    for (const DomainEdge &e : edges_) {
        const std::uint64_t delivered = e.channel->delivered();
        const std::uint64_t sent = e.channel->sent();
        if (sent != delivered || !e.channel->inboxEmpty())
            quiescent = false;
        tally += sent + delivered;
    }
    for (const auto &st : states_) {
        if (!st->idle.load(std::memory_order_acquire))
            quiescent = false;
    }
    tally_out = tally;
    return quiescent;
}

DomainRunner::Result
DomainRunner::run(std::uint64_t max_events)
{
    maxEvents_ = max_events;
    stop_.store(false, std::memory_order_release);
    overflow_.store(false, std::memory_order_release);
    executed_.store(0, std::memory_order_release);

    std::vector<std::thread> workers;
    workers.reserve(threads_);
    for (unsigned t = 0; t < threads_; ++t)
        workers.emplace_back([this, t] { workerLoop(t); });

    // Coordinate: double-scan termination, frozen-graph deadlock
    // backstop. Clocks legitimately keep advancing at quiescence (the
    // null-message leapfrog), so they count only toward deadlock
    // detection, never against termination.
    constexpr std::uint64_t deadlockScans = 4'000'000;
    bool deadlocked = false;
    bool prev_quiescent = false;
    std::uint64_t prev_tally = ~std::uint64_t{0};
    std::vector<Tick> prev_clocks(states_.size(), 0);
    std::uint64_t frozen = 0;

    while (!stop_.load(std::memory_order_acquire)) {
        std::uint64_t tally = 0;
        const bool quiescent = scanQuiescent(tally);

        if (quiescent && prev_quiescent && tally == prev_tally) {
            stop_.store(true, std::memory_order_release);
            break;
        }

        bool clocks_frozen = true;
        for (std::size_t d = 0; d < states_.size(); ++d) {
            const Tick c =
                states_[d]->clock.load(std::memory_order_acquire);
            if (c != prev_clocks[d])
                clocks_frozen = false;
            prev_clocks[d] = c;
        }
        if (!quiescent && clocks_frozen && tally == prev_tally) {
            if (++frozen >= deadlockScans) {
                deadlocked = true;
                stop_.store(true, std::memory_order_release);
                break;
            }
        } else {
            frozen = 0;
        }

        prev_quiescent = quiescent;
        prev_tally = tally;
        std::this_thread::yield();
    }

    for (std::thread &w : workers)
        w.join();

    Result r;
    r.eventsExecuted = executed_.load(std::memory_order_acquire);
    r.deadlocked = deadlocked;
    r.maxEventsExceeded = overflow_.load(std::memory_order_acquire);
    return r;
}

} // namespace gpuwalk::sim
