/**
 * @file
 * Conservative parallel executor for a graph of latency-decoupled
 * domains (sim/domain.hh).
 *
 * Classic conservative synchronization with continuous per-domain
 * horizons (no global barrier): each worker repeatedly
 *
 *   1. reads the published clocks of its in-neighbours and derives
 *      horizon = min over in-edges of (src.clock + edge lookahead)
 *      — no in-edges means an unbounded horizon;
 *   2. drains its in-channels' inboxes into the domain queue
 *      (Channel::drainTo injects events carrying the composite order
 *      keys allocated by the sender, so insertion order is
 *      deterministic and thread-timing independent);
 *   3. executes every local event strictly before the horizon;
 *   4. publishes clock = horizon (release, after all the sends those
 *      events made were posted).
 *
 * Safety: a message crossing edge (s -> d) is posted while s executes
 * an event at tick t < s's next published clock, and is delivered at
 * tick >= t + lookahead(s,d). d only executes events strictly below
 * min(s.clock + lookahead), and reads s.clock before draining — so
 * every message that could land below d's horizon is already in the
 * inbox when d drains. Liveness: horizons are derived from clocks,
 * not executed events, so an idle domain still advances its clock
 * (the null-message equivalent) and the graph needs no zero-lookahead
 * cycles broken at runtime.
 *
 * Termination is detected by the coordinating caller thread with a
 * double scan: every domain idle (no pending events, in-inboxes
 * empty), every channel's delivered == sent (delivered read first),
 * and the full (executed, sent, delivered) tally unchanged between
 * two consecutive scans. A non-quiescent graph whose clocks and
 * tallies freeze is reported as a deadlock.
 */

#ifndef GPUWALK_SIM_DOMAIN_RUNNER_HH
#define GPUWALK_SIM_DOMAIN_RUNNER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/domain.hh"
#include "sim/port.hh"
#include "sim/ticks.hh"

namespace gpuwalk::sim {

/**
 * Runs a domain graph to quiescence on N threads.
 *
 * Determinism: every event's execution order is fixed by (tick,
 * priority, composite key), all allocated deterministically by the
 * sending/owning domain — so any thread count >= 2 produces the
 * bit-identical simulation.
 */
class DomainRunner
{
  public:
    /** What a run() reports back to the caller. */
    struct Result
    {
        /** Events executed, summed over every domain queue. */
        std::uint64_t eventsExecuted = 0;

        /** True when the graph froze without reaching quiescence. */
        bool deadlocked = false;

        /** True when the run hit the caller's max-event guard. */
        bool maxEventsExceeded = false;
    };

    /**
     * @param domains The partitions; ids must be dense from 0.
     * @param edges Every cross-domain channel, with its lookahead.
     * @param threads Worker count; clamped to [1, domains.size()].
     *        0 picks min(domains, hardware threads).
     */
    DomainRunner(std::vector<Domain> domains,
                 std::vector<DomainEdge> edges, unsigned threads);
    ~DomainRunner();

    /**
     * Runs every domain to global quiescence. The calling thread
     * coordinates (termination/deadlock detection) while the workers
     * execute. @p max_events bounds the summed event count (runaway
     * guard).
     */
    Result run(std::uint64_t max_events);

    /** The worker count run() will use. */
    unsigned threads() const { return threads_; }

    /**
     * The horizon bound one in-edge imposes: the destination may run
     * events strictly below src_clock + lookahead; an event exactly on
     * the boundary must wait. Saturates instead of overflowing, so an
     * unbounded source clock yields an unbounded horizon.
     */
    static Tick
    edgeHorizon(Tick src_clock, Tick lookahead)
    {
        return src_clock > maxTick - lookahead ? maxTick
                                               : src_clock + lookahead;
    }

    /** Resolves a --sim-threads value (0 = auto) for @p domains. */
    static unsigned resolveThreads(unsigned requested,
                                   std::size_t domains);

  private:
    struct DomainState;

    void workerLoop(unsigned worker);
    bool stepDomain(DomainState &st);
    bool scanQuiescent(std::uint64_t &tally_out) const;

    std::vector<Domain> domains_;
    std::vector<DomainEdge> edges_;
    unsigned threads_ = 1;
    std::vector<std::unique_ptr<DomainState>> states_;
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> executed_{0};
    std::uint64_t maxEvents_ = 0;
    std::atomic<bool> overflow_{false};
};

} // namespace gpuwalk::sim

#endif // GPUWALK_SIM_DOMAIN_RUNNER_HH
