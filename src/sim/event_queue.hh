/**
 * @file
 * Deterministic discrete-event core: a two-tier calendar queue
 * dispatching intrusive, pool-allocated event nodes.
 *
 * Events are ordered by (tick, priority, insertion sequence); equal-time
 * events therefore execute in a fully deterministic order, which keeps
 * every simulation reproducible for a given configuration and seed.
 * That ordering contract is identical to the original binary-heap
 * implementation — the golden trace digests (tests/test_digest_golden.cc)
 * pin it down bit-exactly.
 *
 * Structure
 * ---------
 * Tier 1 (near future): one single-tick bucket per tick in the window
 * [now, now + windowTicks). Ticks are picoseconds and the common
 * scheduling distances in this simulator (GPU cycle 500, IOMMU hop
 * 25000, DRAM CAS ~13750, bank-conflict reissue ~41k) all fit inside
 * the 2^16-tick window, so almost every event lands in a bucket:
 * scheduling is an append to a per-tick FIFO list and dispatch is a
 * bitmap scan to the next occupied bucket. Because the window spans
 * exactly windowTicks ticks, `when % windowTicks` is collision-free
 * and every bucket holds events of a single tick.
 *
 * Tier 2 (far future): events at `when - now >= windowTicks` go to a
 * small overflow min-heap. runOne() migrates them into buckets once
 * they come within the window; when only far-future events remain,
 * time jumps directly to the earliest one.
 *
 * Event nodes are intrusive (`sim::Event`): components embed events as
 * members and scheduling links them in place — zero allocation on the
 * hottest paths. Callable-based scheduling still works: callbacks are
 * placed into pooled nodes with inline storage for the capture, drawn
 * from a slab pool (sim/object_pool.hh). Oversized captures fall back
 * to a heap box, so no caller ever has to care — that is the
 * compatibility shim for rare cold-path lambdas.
 *
 * Ordering subtlety: a migrated overflow event can carry a *lower*
 * insertion sequence than events already sitting in its bucket (they
 * were scheduled later, but near). Migration therefore inserts in
 * (priority, seq) order; fresh inserts — whose seq is by construction
 * the largest — take the tail-append fast path unless a priority
 * demands otherwise.
 */

#ifndef GPUWALK_SIM_EVENT_QUEUE_HH
#define GPUWALK_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/object_pool.hh"
#include "sim/ticks.hh"

namespace gpuwalk::sim {

class EventQueue;

/**
 * Priority levels for equal-tick ordering. Lower values run first.
 * Most events use Default; responses that must be observed before new
 * work is issued in the same tick can use Early.
 */
enum class EventPriority : int
{
    Early = -1,
    Default = 0,
    Late = 1,
};

/**
 * Intrusive event node. Components embed these as members and
 * schedule them directly; the queue links nodes in place, so the
 * steady state allocates nothing.
 *
 * An Event must stay at a stable address while scheduled (store
 * container-held events in a std::deque, not a std::vector). A still-
 * scheduled event deschedules itself on destruction, so tearing down
 * a component with an event in flight is safe as long as the queue
 * outlives it.
 */
class Event
{
  public:
    Event() = default;
    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;
    virtual ~Event();

    /** Runs when simulated time reaches the scheduled tick. */
    virtual void process() = 0;

    /** True while the event sits in a queue. */
    bool scheduled() const { return scheduled_; }

    /** Tick this event is (or was last) scheduled for. */
    Tick when() const { return when_; }

  private:
    friend class EventQueue;

    Event *next_ = nullptr;
    EventQueue *queue_ = nullptr;
    Tick when_ = 0;
    std::uint64_t seq_ = 0;
    // Spawn lineage (domain-key mode only; see the "Domain-partitioned
    // execution" block): where this event's *allocation* sits in the
    // serial run's same-tick append order.
    std::uint64_t spawnKey_ = 0; ///< parent's key (own key if unspawned)
    std::uint32_t spawnIdx_ = 0; ///< allocation index within the parent
    std::uint16_t gen_ = 0;      ///< same-tick spawn depth (0 = root)
    std::int8_t prio_ = 0;
    bool scheduled_ = false;
    bool inOverflow_ = false;
    bool pooled_ = false;
};

namespace detail {

/**
 * Pool-recycled node carrying a type-erased callable inline. The hot
 * dispatch path uses a fused invoke-and-destroy thunk (one indirect
 * call); the separate destroy thunk exists only for queue teardown
 * with events still pending.
 */
class PooledEvent final : public Event
{
  public:
    /** Sized for the largest hot capture in the codebase (a moved-in
     *  TranslationRequest plus a TLB entry, ~120 bytes). */
    static constexpr std::size_t inlineBytes = 128;

    template <typename F>
    void
    emplace(F &&fn)
    {
        using D = std::decay_t<F>;
        if constexpr (sizeof(D) <= inlineBytes
                      && alignof(D) <= alignof(std::max_align_t)) {
            ::new (storage()) D(std::forward<F>(fn));
            invokeDestroy_ = [](void *p) {
                D *f = std::launder(reinterpret_cast<D *>(p));
                (*f)();
                f->~D();
            };
            destroyOnly_ = [](void *p) {
                std::launder(reinterpret_cast<D *>(p))->~D();
            };
        } else {
            // Compatibility shim: oversized/over-aligned captures are
            // heap-boxed instead of rejected.
            *static_cast<D **>(storage()) = new D(std::forward<F>(fn));
            invokeDestroy_ = [](void *p) {
                D *f = *static_cast<D **>(p);
                (*f)();
                delete f;
            };
            destroyOnly_ = [](void *p) { delete *static_cast<D **>(p); };
        }
    }

    /** Hot path: run the callable and destroy it in one thunk. The
     *  node itself is released to the pool by the queue afterwards. */
    void runAndDestroyCallable() { invokeDestroy_(storage()); }

    /** Teardown path: destroy a never-run callable. */
    void destroyCallable() { destroyOnly_(storage()); }

    void process() override { runAndDestroyCallable(); }

  private:
    void *storage() { return store_; }

    void (*invokeDestroy_)(void *) = nullptr;
    void (*destroyOnly_)(void *) = nullptr;
    alignas(std::max_align_t) unsigned char store_[inlineBytes];
};

} // namespace detail

/**
 * The central event queue driving a simulation.
 *
 * Components schedule intrusive events or callbacks at absolute
 * ticks; the queue executes them in deterministic (tick, priority,
 * insertion) order. There is exactly one queue per System.
 */
class EventQueue
{
  public:
    /** Legacy callback alias; any movable callable is accepted. */
    using Callback = std::function<void()>;

    /** Span of the near-future bucket window, in ticks. */
    static constexpr Tick windowTicks = Tick(1) << 16;

    EventQueue()
    {
        // Deliberately uninitialised: the occupancy bitmap is the
        // validity gate — a bucket is read only when its bit is set,
        // and the bit is set only after the bucket is written. This
        // keeps construction O(bitmap), not O(1 MiB of buckets).
        buckets_.reset(static_cast<Bucket *>(
            std::malloc(numBuckets * sizeof(Bucket))));
        GPUWALK_ASSERT(buckets_, "event queue bucket allocation failed");
    }

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    ~EventQueue()
    {
        // Unhook still-pending events so their later destruction does
        // not chase a dead queue, and destroy never-run pooled
        // callables (their captures may own resources).
        if (nearCount_ > 0) {
            for (std::size_t w = 0; w < numWords; ++w) {
                std::uint64_t bits = occupied_[w];
                while (bits) {
                    const auto b =
                        static_cast<unsigned>(std::countr_zero(bits));
                    bits &= bits - 1;
                    Event *ev = buckets_[w * 64 + b].head;
                    while (ev) {
                        Event *next = ev->next_;
                        unhookAtTeardown(ev);
                        ev = next;
                    }
                }
            }
        }
        for (Event *ev : overflow_)
            unhookAtTeardown(ev);
    }

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of events awaiting execution. */
    std::size_t pending() const { return nearCount_ + overflow_.size(); }

    /** Events currently parked in the far-future overflow tier. */
    std::size_t overflowPending() const { return overflow_.size(); }

    /** True if no events remain. */
    bool empty() const { return pending() == 0; }

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return executed_; }

    // ------------------------------------------------------------------
    // Domain-partitioned execution support (sim/domain.hh).
    //
    // A partitioned run gives every domain its own EventQueue, so the
    // global insertion sequence that tie-breaks equal-(tick, priority)
    // events in a serial run no longer exists. Domain-key mode replaces
    // it with a composite *order key* allocated per queue:
    //
    //     [ allocation tick : 38 | domain : 2 | counter : 18 | sub : 6 ]
    //
    // The allocation-tick-major layout mirrors the serial contract
    // (later-scheduled events carry later sequences) at tick
    // granularity, independently of which thread runs which domain.
    // The sub field orders cross-domain messages that a serial run
    // would have delivered as nested synchronous calls: they inherit
    // the sending event's key plus a call index, so they sort exactly
    // where the serial call would have executed. Keys are comparable
    // across queues, which is what lets per-domain traces merge into
    // one deterministic global order.
    //
    // Same-tick *local* schedules (a rate-limiter continuation whose
    // port is free, any scheduleIn(0)) are the one place the key alone
    // under-determines the serial order: two domains each allocating
    // their first key at tick T tie on (tick, counter) and the domain
    // id would decide, while the serial run appended those events in
    // the order their parents executed. Each event therefore also
    // carries a spawn lineage — (generation, parent key, allocation
    // index within the parent) — recorded when it is scheduled for the
    // current tick *during* dispatch of another event. A serial run
    // executes a tick breadth-first (every already-queued event before
    // any same-tick child, children in parent execution order), so
    // sorting stamps by (generation, parent key, spawn index, own key)
    // reconstructs the serial append order wherever the parents
    // themselves order correctly. Residual ambiguity remains for
    // same-(tick, generation) spawns whose *parents* tie cross-domain
    // at the same allocation tick — one level deeper than before.
    // ------------------------------------------------------------------

    /** Bits of an order key ordering nested same-tick sends. */
    static constexpr unsigned orderSubBits = 6;
    /** Bits counting allocations per (domain, tick). */
    static constexpr unsigned orderCounterBits = 18;
    /** Bits identifying the allocating domain. */
    static constexpr unsigned orderDomainBits = 2;
    static constexpr std::uint64_t orderSubMask =
        (std::uint64_t(1) << orderSubBits) - 1;

    /** Spawn lineage of one event: its allocation's position in the
     *  serial same-tick append order (see the block comment above).
     *  Value-initialized ({}) it reads "root ordered by its own key";
     *  no default member initializers so Lineage{} can appear as a
     *  default argument inside EventQueue itself. */
    struct Lineage
    {
        std::uint64_t spawnKey; ///< parent key (own key if root)
        std::uint32_t spawnIdx; ///< allocation index within parent
        std::uint16_t gen;      ///< same-tick spawn depth
    };

    /** The event being executed right now (for trace order stamps). */
    struct ExecCursor
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        std::uint64_t serial = 0; ///< executed() at dispatch; detects change
        Lineage lineage;
        std::int8_t prio = 0;
    };

    /**
     * Switches this queue to composite order keys as domain @p domain_id.
     * Must be called before any event is scheduled.
     */
    void
    enableDomainKeys(unsigned domain_id)
    {
        GPUWALK_ASSERT(domain_id < (1u << orderDomainBits),
                       "domain id ", domain_id, " exceeds key field");
        GPUWALK_ASSERT(nextSeq_ == 0 && executed_ == 0,
                       "domain keys must be enabled before first use");
        domainKeys_ = true;
        domainId_ = domain_id;
    }

    bool domainKeysEnabled() const { return domainKeys_; }

    /**
     * Allocates the next composite order key at the current tick.
     * Channels use this for messages a serial run would have scheduled
     * as ordinary (positive-latency) events at send time.
     */
    std::uint64_t
    allocOrderKey()
    {
        GPUWALK_ASSERT(domainKeys_, "order keys need domain-key mode");
        if (keyTick_ != now_) {
            keyTick_ = now_;
            keyCount_ = 0;
        }
        GPUWALK_ASSERT(keyCount_ < (std::uint64_t(1) << orderCounterBits),
                       "order-key counter overflow at tick ", now_);
        GPUWALK_ASSERT(
            now_ < (Tick(1) << (64 - orderSubBits - orderCounterBits
                                - orderDomainBits)),
            "tick ", now_, " too large for composite order keys");
        constexpr unsigned counterShift = orderSubBits;
        constexpr unsigned domainShift = orderSubBits + orderCounterBits;
        constexpr unsigned tickShift =
            orderSubBits + orderCounterBits + orderDomainBits;
        return (static_cast<std::uint64_t>(now_) << tickShift)
               | (static_cast<std::uint64_t>(domainId_) << domainShift)
               | (keyCount_++ << counterShift);
    }

    /**
     * Allocates a key ordering a same-tick cross-domain send exactly
     * where the equivalent serial nested call would have run: the
     * currently executing event's key plus a call index.
     */
    std::uint64_t
    allocNestedKey()
    {
        GPUWALK_ASSERT(domainKeys_, "nested keys need domain-key mode");
        GPUWALK_ASSERT(((nestedNext_ + 1) & orderSubMask) != 0,
                       "nested-send sub-key overflow at tick ", now_);
        return ++nestedNext_;
    }

    /** The event currently being dispatched (domain-key mode only). */
    const ExecCursor &cursor() const { return cursor_; }

    /** Lineage of the event being dispatched, inherited verbatim by
     *  same-tick channel sends (nested continuations of it). */
    const Lineage &cursorLineage() const { return cursor_.lineage; }

  private:
    /**
     * Lineage for a local event just allocated @p key for tick
     * @p when: scheduled for the current tick while another event is
     * dispatching, it is a same-tick spawn (the serial run would have
     * appended it behind every queued tick event) and records the
     * dispatched event as its parent; anything else is a root that
     * orders by its own key.
     */
    Lineage
    spawnLineage(Tick when, std::uint64_t key)
    {
        if (dispatching_ && when == now_) {
            GPUWALK_ASSERT(cursor_.lineage.gen < 0xFFFF,
                           "same-tick spawn chain too deep at tick ",
                           now_);
            return Lineage{
                cursor_.seq, spawnNext_++,
                static_cast<std::uint16_t>(cursor_.lineage.gen + 1)};
        }
        return Lineage{key, 0, 0};
    }

  public:

    /**
     * Schedules callable @p fn at @p when under the caller-supplied
     * order key @p key (a composite key allocated by the *sending*
     * queue). This is how cross-domain channel messages enter the
     * destination queue with a thread-independent position.
     */
    template <typename F,
              typename = std::enable_if_t<
                  std::is_invocable_v<std::decay_t<F> &>
                  && !std::is_base_of_v<Event, std::remove_reference_t<F>>>>
    void
    scheduleInjected(Tick when, std::uint64_t key, F &&fn,
                     EventPriority prio = EventPriority::Default,
                     Lineage lineage = Lineage{})
    {
        GPUWALK_ASSERT(when >= now_, "injecting event in the past (when=",
                       when, " now=", now_, ")");
        detail::PooledEvent *ev = pool_.acquire();
        ev->emplace(std::forward<F>(fn));
        ev->when_ = when;
        ev->prio_ = static_cast<std::int8_t>(prio);
        ev->seq_ = key;
        // Default lineage (spawnKey 0) means "root ordered by its own
        // key" — positive-latency channel messages, whose key was
        // allocated at send time like any serial schedule.
        if (lineage.spawnKey == 0 && lineage.gen == 0)
            lineage.spawnKey = key;
        ev->spawnKey_ = lineage.spawnKey;
        ev->spawnIdx_ = lineage.spawnIdx;
        ev->gen_ = lineage.gen;
        ev->scheduled_ = true;
        ev->pooled_ = true;
        ev->queue_ = this;
        enqueue(ev);
    }

    /**
     * Executes every event strictly before @p horizon (the conservative
     * safe bound: messages from other domains can only arrive at or
     * after it). Unlike run(limit), never advances now() past the last
     * executed event. @return events executed.
     */
    std::uint64_t
    runUntil(Tick horizon)
    {
        std::uint64_t n = 0;
        Tick next = 0;
        while (nextWhen(next) && next < horizon) {
            runOne();
            ++n;
        }
        return n;
    }

    /**
     * Tick of the earliest pending event, without executing anything.
     * @return false when the queue is empty.
     */
    bool
    peekNext(Tick &out)
    {
        return nextWhen(out);
    }

    /**
     * Schedules the intrusive event @p ev at absolute time @p when.
     *
     * @pre when >= now()
     * @pre !ev.scheduled()
     */
    void
    schedule(Tick when, Event &ev,
             EventPriority prio = EventPriority::Default)
    {
        GPUWALK_ASSERT(when >= now_, "scheduling event in the past (when=",
                       when, " now=", now_, ")");
        GPUWALK_ASSERT(!ev.scheduled_, "event already scheduled (when=",
                       ev.when_, ")");
        ev.when_ = when;
        ev.prio_ = static_cast<std::int8_t>(prio);
        if (domainKeys_) {
            ev.seq_ = allocOrderKey();
            const Lineage lin = spawnLineage(when, ev.seq_);
            ev.spawnKey_ = lin.spawnKey;
            ev.spawnIdx_ = lin.spawnIdx;
            ev.gen_ = lin.gen;
        } else {
            ev.seq_ = nextSeq_++;
        }
        ev.scheduled_ = true;
        ev.queue_ = this;
        enqueue(&ev);
    }

    /** Schedules the intrusive event @p ev @p delay ticks from now. */
    void
    scheduleIn(Tick delay, Event &ev,
               EventPriority prio = EventPriority::Default)
    {
        schedule(now_ + delay, ev, prio);
    }

    /**
     * Schedules callable @p fn to run at absolute time @p when, in a
     * pooled node with inline capture storage.
     *
     * @pre when >= now()
     */
    template <typename F,
              typename = std::enable_if_t<
                  std::is_invocable_v<std::decay_t<F> &>
                  && !std::is_base_of_v<Event, std::remove_reference_t<F>>>>
    void
    schedule(Tick when, F &&fn,
             EventPriority prio = EventPriority::Default)
    {
        GPUWALK_ASSERT(when >= now_, "scheduling event in the past (when=",
                       when, " now=", now_, ")");
        detail::PooledEvent *ev = pool_.acquire();
        ev->emplace(std::forward<F>(fn));
        ev->when_ = when;
        ev->prio_ = static_cast<std::int8_t>(prio);
        if (domainKeys_) {
            ev->seq_ = allocOrderKey();
            const Lineage lin = spawnLineage(when, ev->seq_);
            ev->spawnKey_ = lin.spawnKey;
            ev->spawnIdx_ = lin.spawnIdx;
            ev->gen_ = lin.gen;
        } else {
            ev->seq_ = nextSeq_++;
        }
        ev->scheduled_ = true;
        ev->pooled_ = true;
        ev->queue_ = this;
        enqueue(ev);
    }

    /** Schedules callable @p fn to run @p delay ticks from now. */
    template <typename F,
              typename = std::enable_if_t<
                  std::is_invocable_v<std::decay_t<F> &>
                  && !std::is_base_of_v<Event, std::remove_reference_t<F>>>>
    void
    scheduleIn(Tick delay, F &&fn,
               EventPriority prio = EventPriority::Default)
    {
        schedule(now_ + delay, std::forward<F>(fn), prio);
    }

    /**
     * Removes a still-pending event from the queue. Called
     * automatically when a scheduled Event is destroyed.
     */
    void
    deschedule(Event &ev)
    {
        GPUWALK_ASSERT(ev.scheduled_ && ev.queue_ == this,
                       "descheduling an event this queue does not hold");
        if (ev.inOverflow_) {
            auto it = std::find(overflow_.begin(), overflow_.end(), &ev);
            GPUWALK_ASSERT(it != overflow_.end(),
                           "overflow event missing from heap");
            overflow_.erase(it);
            std::make_heap(overflow_.begin(), overflow_.end(),
                           OverflowLater{});
            ev.inOverflow_ = false;
        } else {
            const std::size_t idx = bucketIndex(ev.when_);
            Bucket &b = buckets_[idx];
            if (b.head == &ev) {
                b.head = ev.next_;
                if (!b.head)
                    clearBit(idx);
            } else {
                Event *p = b.head;
                while (p && p->next_ != &ev)
                    p = p->next_;
                GPUWALK_ASSERT(p, "event missing from its tick bucket");
                p->next_ = ev.next_;
                if (b.tail == &ev)
                    b.tail = p;
            }
            --nearCount_;
        }
        ev.next_ = nullptr;
        ev.scheduled_ = false;
    }

    /**
     * Executes the next event, advancing time to its tick.
     * @return false if the queue was empty.
     */
    bool
    runOne()
    {
        migrateOverflow();
        if (nearCount_ == 0) {
            if (overflow_.empty())
                return false;
            // Only far-future events remain: jump straight to the
            // earliest one and pull its cohort into the window.
            now_ = overflow_.front()->when_;
            scanFrom_ = now_;
            migrateOverflow();
        }
        const Tick t = scanNextTick();
        const std::size_t idx = bucketIndex(t);
        Bucket &b = buckets_[idx];
        Event *ev = b.head;
        GPUWALK_ASSERT(ev && ev->when_ == t,
                       "bucket bitmap out of sync at tick ", t);
        b.head = ev->next_;
        if (!b.head)
            clearBit(idx); // bit clear ⇒ bucket contents invalid
        --nearCount_;
        ev->next_ = nullptr;
        ev->scheduled_ = false;
        now_ = t;
        ++executed_;
        if (domainKeys_) {
            cursor_.when = t;
            cursor_.prio = ev->prio_;
            cursor_.seq = ev->seq_;
            cursor_.serial = executed_;
            cursor_.lineage =
                Lineage{ev->spawnKey_, ev->spawnIdx_, ev->gen_};
            nestedNext_ = ev->seq_;
            spawnNext_ = 0;
            dispatching_ = true;
        }
        if (ev->pooled_) {
            auto *pe = static_cast<detail::PooledEvent *>(ev);
            pe->runAndDestroyCallable();
            pool_.release(pe);
        } else {
            ev->process();
        }
        dispatching_ = false;
        return true;
    }

    /**
     * Runs until the queue drains or simulated time would exceed
     * @p limit, whichever comes first.
     *
     * With an explicit limit, time always advances to exactly
     * @p limit even when the queue drains early, so time-bounded
     * callers (rate probes, fixed-horizon studies) observe consistent
     * end times. The unbounded default keeps now() at the last
     * executed event.
     *
     * @return the final simulated time.
     */
    Tick
    run(Tick limit = maxTick)
    {
        if (limit == maxTick) {
            while (runOne()) {
            }
            return now_;
        }
        Tick next = 0;
        while (nextWhen(next) && next <= limit)
            runOne();
        if (now_ < limit)
            now_ = limit;
        return now_;
    }

    /** Runs at most @p max_events events. @return events executed. */
    std::uint64_t
    runEvents(std::uint64_t max_events)
    {
        std::uint64_t n = 0;
        while (n < max_events && runOne())
            ++n;
        return n;
    }

  private:
    static constexpr std::size_t numBuckets =
        static_cast<std::size_t>(windowTicks);
    static constexpr std::size_t numWords = numBuckets / 64;

    struct Bucket
    {
        Event *head;
        Event *tail;
    };
    static_assert(std::is_trivially_default_constructible_v<Bucket>,
                  "buckets are calloc-initialised");

    struct BucketFree
    {
        void operator()(Bucket *p) const { std::free(p); }
    };

    struct OverflowLater
    {
        bool
        operator()(const Event *a, const Event *b) const
        {
            if (a->when_ != b->when_)
                return a->when_ > b->when_;
            if (a->prio_ != b->prio_)
                return a->prio_ > b->prio_;
            return a->seq_ > b->seq_;
        }
    };

    static std::size_t
    bucketIndex(Tick when)
    {
        return static_cast<std::size_t>(when % windowTicks);
    }

    /** Same-tick ordering within a bucket: (priority, seq). */
    static bool
    ordersBefore(const Event *a, const Event *b)
    {
        if (a->prio_ != b->prio_)
            return a->prio_ < b->prio_;
        return a->seq_ < b->seq_;
    }

    void
    setBit(std::size_t idx)
    {
        occupied_[idx >> 6] |= std::uint64_t(1) << (idx & 63);
    }

    bool
    testBit(std::size_t idx) const
    {
        return occupied_[idx >> 6] >> (idx & 63) & 1;
    }

    void
    clearBit(std::size_t idx)
    {
        occupied_[idx >> 6] &= ~(std::uint64_t(1) << (idx & 63));
    }

    void
    enqueue(Event *ev)
    {
        if (ev->when_ - now_ < windowTicks) {
            bucketInsert(ev);
        } else {
            ev->inOverflow_ = true;
            overflow_.push_back(ev);
            std::push_heap(overflow_.begin(), overflow_.end(),
                           OverflowLater{});
        }
    }

    void
    bucketInsert(Event *ev)
    {
        const std::size_t idx = bucketIndex(ev->when_);
        Bucket &b = buckets_[idx];
        ev->next_ = nullptr;
        if (!testBit(idx)) {
            // Bucket contents are garbage until the bit is set; write
            // before reading anything from it.
            b.head = b.tail = ev;
            setBit(idx);
            ++nearCount_;
            if (ev->when_ < scanFrom_)
                scanFrom_ = ev->when_;
            return;
        }
        GPUWALK_ASSERT(b.head->when_ == ev->when_,
                       "mixed-tick bucket: window invariant broken");
        if (ordersBefore(b.tail, ev)) {
            // Fast path: fresh inserts carry the largest seq, so they
            // belong at the tail unless outranked by priority.
            b.tail->next_ = ev;
            b.tail = ev;
        } else if (ordersBefore(ev, b.head)) {
            ev->next_ = b.head;
            b.head = ev;
        } else {
            Event *p = b.head;
            while (p->next_ && ordersBefore(p->next_, ev))
                p = p->next_;
            ev->next_ = p->next_;
            p->next_ = ev;
            if (!ev->next_)
                b.tail = ev;
        }
        ++nearCount_;
        if (ev->when_ < scanFrom_)
            scanFrom_ = ev->when_;
    }

    /** Moves overflow events whose tick entered the window into their
     *  buckets, preserving (priority, seq) order among same-tick
     *  residents. */
    void
    migrateOverflow()
    {
        while (!overflow_.empty()) {
            Event *top = overflow_.front();
            if (top->when_ - now_ >= windowTicks)
                break;
            std::pop_heap(overflow_.begin(), overflow_.end(),
                          OverflowLater{});
            overflow_.pop_back();
            top->inOverflow_ = false;
            bucketInsert(top);
        }
    }

    /**
     * Finds the tick of the earliest occupied bucket via a circular
     * bitmap scan. The start position is cached in scanFrom_ — inserts
     * below it pull it back, executions advance it — so repeated scans
     * are near-constant time.
     *
     * @pre nearCount_ > 0
     */
    Tick
    scanNextTick()
    {
        if (scanFrom_ < now_)
            scanFrom_ = now_;
        const std::size_t base = bucketIndex(scanFrom_);
        const std::size_t word = base >> 6;
        const unsigned bit = base & 63;
        const std::uint64_t first = occupied_[word] >> bit;
        if (first) {
            scanFrom_ += static_cast<Tick>(std::countr_zero(first));
            return scanFrom_;
        }
        for (std::size_t k = 1; k <= numWords; ++k) {
            std::size_t wi = word + k;
            if (wi >= numWords)
                wi -= numWords;
            const std::uint64_t bits = occupied_[wi];
            if (bits) {
                scanFrom_ += static_cast<Tick>(
                    k * 64 - bit
                    + static_cast<unsigned>(std::countr_zero(bits)));
                return scanFrom_;
            }
        }
        panic("bucket bitmap inconsistent with nearCount_=", nearCount_);
    }

    /**
     * Reports the tick of the earliest pending event without mutating
     * queue state (no migration, no time jump) — the overflow top
     * bounds the buckets from below when migration is pending.
     *
     * @return false when the queue is empty.
     */
    bool
    nextWhen(Tick &out)
    {
        bool have = false;
        if (nearCount_ > 0) {
            out = scanNextTick();
            have = true;
        }
        if (!overflow_.empty()
            && (!have || overflow_.front()->when_ < out)) {
            out = overflow_.front()->when_;
            have = true;
        }
        return have;
    }

    void
    unhookAtTeardown(Event *ev)
    {
        ev->next_ = nullptr;
        ev->scheduled_ = false;
        ev->inOverflow_ = false;
        ev->queue_ = nullptr;
        if (ev->pooled_)
            static_cast<detail::PooledEvent *>(ev)->destroyCallable();
    }

    std::unique_ptr<Bucket[], BucketFree> buckets_;
    std::array<std::uint64_t, numWords> occupied_{};
    std::vector<Event *> overflow_;
    ObjectPool<detail::PooledEvent> pool_{512};
    std::size_t nearCount_ = 0;
    Tick now_ = 0;
    Tick scanFrom_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;

    // Domain-key mode (see the "Domain-partitioned execution" block).
    bool domainKeys_ = false;
    bool dispatching_ = false; ///< inside runOne's process() call
    unsigned domainId_ = 0;
    Tick keyTick_ = maxTick; ///< sentinel: first alloc resets the counter
    std::uint64_t keyCount_ = 0;
    std::uint64_t nestedNext_ = 0;
    std::uint32_t spawnNext_ = 0; ///< same-tick spawns by this dispatch
    ExecCursor cursor_;
};

inline Event::~Event()
{
    if (scheduled_ && queue_)
        queue_->deschedule(*this);
}

} // namespace gpuwalk::sim

#endif // GPUWALK_SIM_EVENT_QUEUE_HH
