/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events are ordered by (tick, priority, insertion sequence); equal-time
 * events therefore execute in a fully deterministic order, which keeps
 * every simulation reproducible for a given configuration and seed.
 */

#ifndef GPUWALK_SIM_EVENT_QUEUE_HH
#define GPUWALK_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace gpuwalk::sim {

/**
 * Priority levels for equal-tick ordering. Lower values run first.
 * Most events use Default; responses that must be observed before new
 * work is issued in the same tick can use Early.
 */
enum class EventPriority : int
{
    Early = -1,
    Default = 0,
    Late = 1,
};

/**
 * The central event queue driving a simulation.
 *
 * Components schedule callbacks at absolute ticks; the queue executes
 * them in deterministic order. There is exactly one queue per System.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of events awaiting execution. */
    std::size_t pending() const { return queue_.size(); }

    /** True if no events remain. */
    bool empty() const { return queue_.empty(); }

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Schedules @p cb to run at absolute time @p when.
     *
     * @pre when >= now()
     */
    void
    schedule(Tick when, Callback cb,
             EventPriority prio = EventPriority::Default)
    {
        GPUWALK_ASSERT(when >= now_, "scheduling event in the past (when=",
                       when, " now=", now_, ")");
        queue_.push(Event{when, static_cast<int>(prio), nextSeq_++,
                          std::move(cb)});
    }

    /** Schedules @p cb to run @p delay ticks from now. */
    void
    scheduleIn(Tick delay, Callback cb,
               EventPriority prio = EventPriority::Default)
    {
        schedule(now_ + delay, std::move(cb), prio);
    }

    /**
     * Executes the next event, advancing time to its tick.
     * @return false if the queue was empty.
     */
    bool
    runOne()
    {
        if (queue_.empty())
            return false;
        // Moving out of a priority_queue top requires a const_cast; the
        // element is popped immediately afterwards so this is safe.
        Event ev = std::move(const_cast<Event &>(queue_.top()));
        queue_.pop();
        now_ = ev.when;
        ++executed_;
        ev.cb();
        return true;
    }

    /**
     * Runs until the queue drains or simulated time would exceed
     * @p limit, whichever comes first.
     *
     * With an explicit limit, time always advances to exactly
     * @p limit even when the queue drains early, so time-bounded
     * callers (rate probes, fixed-horizon studies) observe consistent
     * end times. The unbounded default keeps now() at the last
     * executed event.
     *
     * @return the final simulated time.
     */
    Tick
    run(Tick limit = maxTick)
    {
        while (!queue_.empty() && queue_.top().when <= limit)
            runOne();
        if (limit != maxTick && now_ < limit)
            now_ = limit;
        return now_;
    }

    /** Runs at most @p max_events events. @return events executed. */
    std::uint64_t
    runEvents(std::uint64_t max_events)
    {
        std::uint64_t n = 0;
        while (n < max_events && runOne())
            ++n;
        return n;
    }

  private:
    struct Event
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace gpuwalk::sim

#endif // GPUWALK_SIM_EVENT_QUEUE_HH
