#include "sim/stats.hh"

#include <iomanip>

namespace gpuwalk::sim {

void
Counter::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << value_ << " # " << desc() << "\n";
}

void
Scalar::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << value_ << " # " << desc() << "\n";
}

void
Average::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << "::mean " << mean() << " # " << desc()
       << "\n";
    os << prefix << name() << "::count " << count_ << " # samples\n";
    if (count_ > 0) {
        os << prefix << name() << "::min " << min_ << " # minimum\n";
        os << prefix << name() << "::max " << max_ << " # maximum\n";
    }
}

std::string
Histogram::bucketLabel(std::size_t i) const
{
    std::uint64_t lo = i == 0 ? 0 : bounds_[i - 1] + 1;
    if (i == bounds_.size())
        return std::to_string(lo) + "+";
    return std::to_string(lo) + "-" + std::to_string(bounds_[i]);
}

void
Histogram::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << "::total " << total_ << " # " << desc()
       << "\n";
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        os << prefix << name() << "::" << bucketLabel(i) << " "
           << counts_[i] << " # " << std::setprecision(4)
           << fraction(i) * 100.0 << "%\n";
    }
}

void
Counter::dumpJsonValue(std::ostream &os) const
{
    os << value_;
}

void
Scalar::dumpJsonValue(std::ostream &os) const
{
    os << value_;
}

void
Average::dumpJsonValue(std::ostream &os) const
{
    os << "{\"mean\": " << mean() << ", \"count\": " << count_;
    if (count_ > 0)
        os << ", \"min\": " << min_ << ", \"max\": " << max_;
    os << "}";
}

void
Histogram::dumpJsonValue(std::ostream &os) const
{
    os << "{\"total\": " << total_ << ", \"buckets\": {";
    bool first = true;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (!first)
            os << ", ";
        first = false;
        os << "\"" << bucketLabel(i) << "\": " << counts_[i];
    }
    os << "}}";
}

void
StatGroup::dumpJson(std::ostream &os) const
{
    os << "{";
    bool first = true;
    for (const Stat *s : stats_) {
        if (!first)
            os << ", ";
        first = false;
        os << "\"" << s->name() << "\": ";
        s->dumpJsonValue(os);
    }
    for (const StatGroup *g : children_) {
        if (!first)
            os << ", ";
        first = false;
        os << "\"" << g->name() << "\": ";
        g->dumpJson(os);
    }
    os << "}";
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string path = prefix.empty() ? name_ + "."
                                            : prefix + name_ + ".";
    for (const Stat *s : stats_)
        s->dump(os, path);
    for (const StatGroup *g : children_)
        g->dump(os, path);
}

void
StatGroup::reset()
{
    for (Stat *s : stats_)
        s->reset();
    for (StatGroup *g : children_)
        g->reset();
}

} // namespace gpuwalk::sim
