/**
 * @file
 * A single-ported resource: executes submitted actions in FIFO order
 * at a maximum rate of one per period.
 *
 * Used to model structural throughput limits — a TLB that performs
 * one lookup per cycle, an IOMMU front-end that accepts one request
 * per cycle. These limits are what multiplex independent request
 * streams into each other (the source of the paper's walk-request
 * interleaving, §III-B).
 */

#ifndef GPUWALK_SIM_RATE_LIMITER_HH
#define GPUWALK_SIM_RATE_LIMITER_HH

#include <utility>

#include "sim/event_queue.hh"
#include "sim/ticks.hh"

namespace gpuwalk::sim {

/** FIFO, one-action-per-period execution port. */
class RateLimiter
{
  public:
    /**
     * @param eq Event queue.
     * @param period Minimum spacing between consecutive actions.
     */
    RateLimiter(EventQueue &eq, Tick period) : eq_(eq), period_(period) {}

    /**
     * Runs @p action at the port's next free slot (>= now), in
     * submission order. Forwarded straight into a pooled event node —
     * no intermediate std::function.
     */
    template <typename F>
    void
    submit(F &&action)
    {
        const Tick slot = std::max(eq_.now(), nextFree_);
        nextFree_ = slot + period_;
        eq_.schedule(slot, std::forward<F>(action));
    }

    /** Earliest tick a new submission would execute at. */
    Tick
    nextSlot() const
    {
        return std::max(eq_.now(), nextFree_);
    }

    Tick period() const { return period_; }

  private:
    EventQueue &eq_;
    Tick period_;
    Tick nextFree_ = 0;
};

} // namespace gpuwalk::sim

#endif // GPUWALK_SIM_RATE_LIMITER_HH
