#include "sim/audit.hh"

namespace gpuwalk::sim {

const char *
toString(AuditPhase phase)
{
    return phase == AuditPhase::Final ? "final" : "periodic";
}

void
AuditContext::record(std::string message)
{
    auditor_.record(invariant_ ? *invariant_ : std::string("<unnamed>"),
                    std::move(message), phase_, now_);
}

std::size_t
Auditor::check(AuditPhase phase, Tick now)
{
    const std::uint64_t before = violationCount();
    AuditContext ctx(*this, phase, now);
    for (const auto &inv : invariants_) {
        ctx.invariant_ = &inv.name;
        inv.check(ctx);
        ++checksRun_;
    }
    ctx.invariant_ = nullptr;
    return static_cast<std::size_t>(violationCount() - before);
}

void
Auditor::record(const std::string &name, std::string message,
                AuditPhase phase, Tick now)
{
    warn("audit [", toString(phase), " @", now, "] ", name, ": ", message);
    if (violations_.size() >= maxStoredViolations) {
        ++dropped_;
        return;
    }
    violations_.push_back({name, std::move(message), now, phase});
}

} // namespace gpuwalk::sim
