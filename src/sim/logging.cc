#include "sim/logging.hh"

#include <cstdlib>
#include <iostream>

namespace gpuwalk::sim::detail {

void
panicImpl(const std::string &msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    std::cerr << "fatal: " << msg << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::cerr << "info: " << msg << std::endl;
}

} // namespace gpuwalk::sim::detail
