/**
 * @file
 * Small-buffer, move-only callable — the allocation-free replacement
 * for `std::function` on request completion paths.
 *
 * `std::function` heap-allocates for any capture beyond ~2 words and
 * requires copyable targets, which both forbids captures that own a
 * moved-in request and puts a malloc/free pair on every walk and
 * memory access. InlineFunction stores the callable inline up to a
 * caller-chosen byte budget (default sized for this codebase's hot
 * captures) and needs only movability. Oversized captures still work
 * — they fall back to a heap box — so cold paths keep their ergonomic
 * lambdas while hot paths stay allocation-free.
 */

#ifndef GPUWALK_SIM_INLINE_FUNCTION_HH
#define GPUWALK_SIM_INLINE_FUNCTION_HH

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace gpuwalk::sim {

template <typename Signature, std::size_t InlineBytes = 48>
class InlineFunction; // primary template; only R(As...) is defined

template <typename R, typename... As, std::size_t InlineBytes>
class InlineFunction<R(As...), InlineBytes>
{
  public:
    InlineFunction() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction>
                  && std::is_invocable_r_v<R, std::decay_t<F> &, As...>>>
    InlineFunction(F &&fn)
    {
        emplace(std::forward<F>(fn));
    }

    InlineFunction(InlineFunction &&other) noexcept
    {
        moveFrom(other);
    }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction>
                  && std::is_invocable_r_v<R, std::decay_t<F> &, As...>>>
    InlineFunction &
    operator=(F &&fn)
    {
        reset();
        emplace(std::forward<F>(fn));
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    R
    operator()(As... as)
    {
        return ops_->invoke(storage(), static_cast<As &&>(as)...);
    }

    void
    reset()
    {
        if (ops_) {
            ops_->destroy(storage());
            ops_ = nullptr;
        }
    }

  private:
    struct Ops
    {
        R (*invoke)(void *, As &&...);
        void (*relocate)(void *dst, void *src); // move-construct + destroy
        void (*destroy)(void *);
    };

    template <typename F>
    static constexpr bool fitsInline =
        sizeof(F) <= InlineBytes
        && alignof(F) <= alignof(std::max_align_t)
        && std::is_nothrow_move_constructible_v<F>;

    template <typename F>
    struct InlineOps
    {
        static R
        invoke(void *p, As &&...as)
        {
            return (*std::launder(reinterpret_cast<F *>(p)))(
                std::forward<As>(as)...);
        }

        static void
        relocate(void *dst, void *src)
        {
            F *from = std::launder(reinterpret_cast<F *>(src));
            ::new (dst) F(std::move(*from));
            from->~F();
        }

        static void
        destroy(void *p)
        {
            std::launder(reinterpret_cast<F *>(p))->~F();
        }

        static constexpr Ops ops{&invoke, &relocate, &destroy};
    };

    template <typename F>
    struct BoxedOps
    {
        static R
        invoke(void *p, As &&...as)
        {
            return (**static_cast<F **>(p))(std::forward<As>(as)...);
        }

        static void
        relocate(void *dst, void *src)
        {
            *static_cast<F **>(dst) = *static_cast<F **>(src);
        }

        static void
        destroy(void *p)
        {
            delete *static_cast<F **>(p);
        }

        static constexpr Ops ops{&invoke, &relocate, &destroy};
    };

    template <typename F>
    void
    emplace(F &&fn)
    {
        using D = std::decay_t<F>;
        if constexpr (fitsInline<D>) {
            ::new (storage()) D(std::forward<F>(fn));
            ops_ = &InlineOps<D>::ops;
        } else {
            // Oversized or over-aligned capture: heap-boxed fallback.
            *static_cast<D **>(storage()) = new D(std::forward<F>(fn));
            ops_ = &BoxedOps<D>::ops;
        }
    }

    void
    moveFrom(InlineFunction &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_) {
            ops_->relocate(storage(), other.storage());
            other.ops_ = nullptr;
        }
    }

    void *storage() { return store_; }

    const Ops *ops_ = nullptr;
    alignas(std::max_align_t) unsigned char store_[InlineBytes];

    static_assert(InlineBytes >= sizeof(void *),
                  "inline buffer must hold at least the boxed pointer");
};

} // namespace gpuwalk::sim

#endif // GPUWALK_SIM_INLINE_FUNCTION_HH
