/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * A self-contained xoshiro256** implementation so results do not depend
 * on the standard library's distribution implementations. Every
 * stochastic component (workload generators, the random walk scheduler)
 * owns its own seeded Rng, making runs bit-reproducible.
 */

#ifndef GPUWALK_SIM_RNG_HH
#define GPUWALK_SIM_RNG_HH

#include <array>
#include <cstdint>

#include "sim/logging.hh"

namespace gpuwalk::sim {

/** xoshiro256** generator with convenience sampling helpers. */
class Rng
{
  public:
    /** Seeds the state via splitmix64 of @p seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &s : state_)
            s = splitmix64(x);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0 */
    std::uint64_t
    below(std::uint64_t bound)
    {
        GPUWALK_ASSERT(bound > 0, "Rng::below(0)");
        // Debiased modulo (Lemire-style rejection kept simple).
        std::uint64_t threshold = (~bound + 1) % bound; // (2^64 - bound) % bound
        for (;;) {
            std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        GPUWALK_ASSERT(lo <= hi, "Rng::range lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Geometric-ish burst length: 1 + number of successes of
     * probability @p p, capped at @p cap. Used by workload generators.
     */
    std::uint64_t
    burst(double p, std::uint64_t cap)
    {
        std::uint64_t n = 1;
        while (n < cap && chance(p))
            ++n;
        return n;
    }

  private:
    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        std::uint64_t z = (x += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    static std::uint64_t
    rotl(std::uint64_t v, int k)
    {
        return (v << k) | (v >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
};

} // namespace gpuwalk::sim

#endif // GPUWALK_SIM_RNG_HH
