/**
 * @file
 * Lightweight statistics framework.
 *
 * Components declare statistics as members and register them with a
 * StatGroup, which provides hierarchical naming, dumping, and reset.
 * The design follows gem5's stats package in spirit: stats are cheap to
 * update on the hot path and formatted only at dump time.
 */

#ifndef GPUWALK_SIM_STATS_HH
#define GPUWALK_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace gpuwalk::sim {

/** Base class for all statistics: a named, documented value. */
class Stat
{
  public:
    Stat(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {}

    virtual ~Stat() = default;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Writes "name value # desc" line(s) to @p os. */
    virtual void dump(std::ostream &os, const std::string &prefix) const = 0;

    /** Writes this stat's value as a JSON fragment (no name). */
    virtual void dumpJsonValue(std::ostream &os) const = 0;

    /** Returns the stat to its initial state. */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** A monotonically increasing event counter. */
class Counter : public Stat
{
  public:
    using Stat::Stat;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJsonValue(std::ostream &os) const override;
    void reset() override { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** A settable scalar (e.g., a configuration echo or derived value). */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator=(double v) { value_ = v; return *this; }
    double value() const { return value_; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJsonValue(std::ostream &os) const override;
    void reset() override { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** Running mean/min/max over sampled values. */
class Average : public Stat
{
  public:
    using Stat::Stat;

    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double minValue() const { return count_ ? min_ : 0.0; }
    double maxValue() const { return count_ ? max_ : 0.0; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJsonValue(std::ostream &os) const override;

    void
    reset() override
    {
        sum_ = 0.0;
        count_ = 0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * A histogram over explicit bucket upper bounds.
 *
 * Buckets are defined by a sorted vector of inclusive upper bounds; a
 * final overflow bucket catches everything above the last bound. This
 * matches the paper's Figure 3 presentation (1-16, 17-32, ..., 81-256).
 */
class Histogram : public Stat
{
  public:
    Histogram(std::string name, std::string desc,
              std::vector<std::uint64_t> upper_bounds)
        : Stat(std::move(name), std::move(desc)),
          bounds_(std::move(upper_bounds)),
          counts_(bounds_.size() + 1, 0)
    {
        GPUWALK_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()),
                       "histogram bounds must be sorted");
    }

    /** Convenience: @p n equal-width buckets covering [1, max]. */
    static Histogram
    linear(std::string name, std::string desc, std::uint64_t max,
           std::size_t n)
    {
        std::vector<std::uint64_t> bounds;
        bounds.reserve(n);
        for (std::size_t i = 1; i <= n; ++i)
            bounds.push_back(max * i / n);
        return Histogram(std::move(name), std::move(desc),
                         std::move(bounds));
    }

    void
    sample(std::uint64_t v, std::uint64_t weight = 1)
    {
        auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
        counts_[static_cast<std::size_t>(it - bounds_.begin())] += weight;
        total_ += weight;
    }

    std::size_t buckets() const { return counts_.size(); }
    std::uint64_t bucketCount(std::size_t i) const { return counts_.at(i); }
    std::uint64_t total() const { return total_; }

    /** Fraction of samples in bucket @p i (0 if no samples). */
    double
    fraction(std::size_t i) const
    {
        return total_ ? static_cast<double>(counts_.at(i)) / total_ : 0.0;
    }

    /** Human-readable "lo-hi" label of bucket @p i. */
    std::string bucketLabel(std::size_t i) const;

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJsonValue(std::ostream &os) const override;

    void
    reset() override
    {
        std::fill(counts_.begin(), counts_.end(), 0);
        total_ = 0;
    }

  private:
    std::vector<std::uint64_t> bounds_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/**
 * A named collection of statistics.
 *
 * Groups hold non-owning pointers: the convention is that a component
 * declares its stats as data members and registers them in its
 * constructor, so the stats outlive the registration.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Registers @p stat; the group does not take ownership. */
    void add(Stat &stat) { stats_.push_back(&stat); }

    /** Registers a child group (non-owning). */
    void addChild(StatGroup &child) { children_.push_back(&child); }

    const std::string &name() const { return name_; }

    /** Dumps all stats, prefixing names with the group path. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /**
     * Dumps the group as a JSON object: stats become "name": value
     * members and child groups become nested objects. Machine-readable
     * companion to dump() for experiment post-processing.
     */
    void dumpJson(std::ostream &os) const;

    /** Resets all stats in this group and its children. */
    void reset();

  private:
    std::string name_;
    std::vector<Stat *> stats_;
    std::vector<StatGroup *> children_;
};

} // namespace gpuwalk::sim

#endif // GPUWALK_SIM_STATS_HH
