/**
 * @file
 * Slab-backed free-list pools for hot simulation objects.
 *
 * A pool owns its objects in contiguous slabs and recycles them
 * through a LIFO free list, so the steady-state cost of acquiring a
 * record on the simulator's hot paths (event nodes, MSHR/merge
 * entries) is a pointer pop instead of a malloc. Objects are
 * constructed once per slot and *reused as-is* across acquire/release
 * cycles: state they carry (including any container capacity they
 * grew) survives recycling, which is exactly what makes repeated use
 * allocation-free. Callers reset whatever state matters to them.
 *
 * Release is validated unconditionally (not just in debug builds):
 * releasing an object twice, or a pointer the pool never issued,
 * panics immediately instead of corrupting the free list.
 */

#ifndef GPUWALK_SIM_OBJECT_POOL_HH
#define GPUWALK_SIM_OBJECT_POOL_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/logging.hh"

namespace gpuwalk::sim {

/** Growable slab pool of default-constructed, recycled @p T objects. */
template <typename T>
class ObjectPool
{
  public:
    /** @param slab_objects Objects added per exhaustion-triggered
     *  growth step. */
    explicit ObjectPool(std::size_t slab_objects = 256)
        : slabObjects_(slab_objects)
    {
        GPUWALK_ASSERT(slabObjects_ > 0, "pool needs a slab size");
    }

    ObjectPool(const ObjectPool &) = delete;
    ObjectPool &operator=(const ObjectPool &) = delete;

    /**
     * Returns a free object, growing the pool by one slab when the
     * free list is exhausted. The object retains whatever state its
     * previous user left; the caller resets what it needs.
     */
    T *
    acquire()
    {
        if (free_.empty())
            grow();
        T *obj = free_.back();
        free_.pop_back();
        *liveFlag(obj) = 1;
        ++inUse_;
        if (inUse_ > peakInUse_)
            peakInUse_ = inUse_;
        return obj;
    }

    /** Returns @p obj to the free list. Panics on double release or
     *  on a pointer this pool never issued. */
    void
    release(T *obj)
    {
        std::uint8_t *live = liveFlag(obj);
        GPUWALK_ASSERT(*live == 1, "double release of pooled object ",
                       static_cast<const void *>(obj));
        *live = 0;
        GPUWALK_ASSERT(inUse_ > 0, "pool release underflow");
        --inUse_;
        free_.push_back(obj);
    }

    /** Total objects owned (free + in use). */
    std::size_t capacity() const { return slabs_.size() * slabObjects_; }

    /** Objects currently acquired. */
    std::size_t inUse() const { return inUse_; }

    /** High-water mark of simultaneously acquired objects. */
    std::size_t peakInUse() const { return peakInUse_; }

    /** Growth steps taken so far. */
    std::size_t slabCount() const { return slabs_.size(); }

  private:
    struct Slab
    {
        std::unique_ptr<T[]> objects;
        std::unique_ptr<std::uint8_t[]> live;
    };

    void
    grow()
    {
        Slab slab;
        slab.objects = std::make_unique<T[]>(slabObjects_);
        slab.live = std::make_unique<std::uint8_t[]>(slabObjects_);
        free_.reserve(capacity() + slabObjects_);
        // LIFO free list: push in reverse so the first acquires come
        // out in slab order (warm, sequential first touch).
        for (std::size_t i = slabObjects_; i-- > 0;)
            free_.push_back(&slab.objects[i]);
        slabs_.push_back(std::move(slab));
    }

    /** Maps @p obj back to its slab's live flag; panics on pointers
     *  outside every slab (foreign or misaligned releases). */
    std::uint8_t *
    liveFlag(T *obj)
    {
        for (auto &slab : slabs_) {
            T *base = slab.objects.get();
            if (obj >= base && obj < base + slabObjects_)
                return &slab.live[static_cast<std::size_t>(obj - base)];
        }
        panic("release of non-pooled object ",
              static_cast<const void *>(obj));
    }

    std::size_t slabObjects_;
    std::vector<Slab> slabs_;
    std::vector<T *> free_;
    std::size_t inUse_ = 0;
    std::size_t peakInUse_ = 0;
};

} // namespace gpuwalk::sim

#endif // GPUWALK_SIM_OBJECT_POOL_HH
