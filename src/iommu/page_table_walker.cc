#include "iommu/page_table_walker.hh"

#include "sim/debug.hh"
#include "vm/page_table.hh"

namespace gpuwalk::iommu {

void
PageTableWalker::start(core::PendingWalk walk, DoneCallback on_done)
{
    GPUWALK_ASSERT(!busy_, "walker already busy");
    busy_ = true;
    current_ = std::move(walk);
    onDone_ = std::move(on_done);
    accesses_ = 0;
    started_ = eq_.now();
    levelTicks_.fill(0);

    // Prefetch walks were never scored at arrival, so their lookups
    // must not consume pin counters a scoring probe left behind.
    const WalkStart ws =
        pwc_.lookup(current_.request.vaPage, current_.request.ctx,
                    !current_.isPrefetch);
    level_ = ws.level;
    table_ = ws.tableBase;
    step();
}

void
PageTableWalker::step()
{
    const mem::Addr va = current_.request.vaPage;
    const auto level = vm::PtLevel{level_};
    const mem::Addr slot =
        table_ + std::uint64_t(vm::PageTable::indexAt(va, level)) * 8;

    // Prefetch walks bypass the scheduler and are invisible to the
    // trace, keeping "every enqueued walk completes once" exact.
    if (tracer_ && !current_.isPrefetch) {
        trace::Event ev;
        ev.tick = eq_.now();
        ev.kind = trace::EventKind::MemIssued;
        ev.ctx = current_.request.ctx;
        ev.level = static_cast<std::uint8_t>(level_);
        ev.walker = id_;
        ev.wavefront = current_.request.wavefront;
        ev.instruction = current_.request.instruction;
        ev.vaPage = va;
        ev.arg0 = slot;
        tracer_->record(ev);
    }

    const sim::Tick issued = eq_.now();
    const unsigned issued_level = level_;
    mem::MemoryRequest req;
    req.addr = slot;
    req.size = 8;
    req.write = false;
    req.requester = mem::Requester::PageWalk;
    req.onComplete = [this, slot, va, issued, issued_level] {
        ++accesses_;
        const sim::Tick latency = eq_.now() - issued;
        levelTicks_[issued_level - 1] = latency;
        if (tracer_ && !current_.isPrefetch) {
            trace::Event ev;
            ev.tick = eq_.now();
            ev.kind = trace::EventKind::MemCompleted;
            ev.ctx = current_.request.ctx;
            ev.level = static_cast<std::uint8_t>(issued_level);
            ev.walker = id_;
            ev.wavefront = current_.request.wavefront;
            ev.instruction = current_.request.instruction;
            ev.vaPage = va;
            ev.arg0 = latency;
            tracer_->record(ev);
        }
        const std::uint64_t entry = store_.read64(slot);
        if (!(entry & vm::pte::present)) {
            // A non-present entry is a far fault under demand paging
            // and a modeling bug otherwise (eagerly mapped workloads
            // are fully resident).
            GPUWALK_ASSERT(faultsAllowed_,
                           "page walk hit a non-present entry at level ",
                           level_, " for va ", va,
                           " (workloads are fully resident)");
            fault();
            return;
        }
        if (level_ == 2 && (entry & vm::pte::pageSize)) {
            // 2 MB leaf (PS bit): the walk terminates a level early.
            // The PWC is not filled — there is no next-level table;
            // the translation itself belongs in the TLBs.
            const mem::Addr base = entry & vm::pte::addrMask2M;
            finish(base | (va & vm::largePageMask),
                   /*large_page=*/true);
            return;
        }

        const mem::Addr next = entry & vm::pte::addrMask;
        if (level_ > 1) {
            pwc_.fill(va, vm::PtLevel{level_}, next,
                      current_.request.ctx);
            --level_;
            table_ = next;
            step();
        } else {
            finish(next, /*large_page=*/false);
        }
    };
    memory_.access(std::move(req));
}

void
PageTableWalker::finish(mem::Addr pa_page, bool large_page)
{
    ++walksDone_;
    sim::debug::log("walks", eq_.now(), "walk done va=", std::hex,
                    current_.request.vaPage, " pa=", pa_page, std::dec,
                    " accesses=", accesses_, large_page ? " (2MB)" : "");
    if (tracer_ && !current_.isPrefetch) {
        trace::Event ev;
        ev.tick = eq_.now();
        ev.kind = trace::EventKind::WalkDone;
        ev.ctx = current_.request.ctx;
        ev.walker = id_;
        ev.wavefront = current_.request.wavefront;
        ev.instruction = current_.request.instruction;
        ev.vaPage = current_.request.vaPage;
        ev.arg0 = accesses_;
        ev.arg1 = eq_.now() - started_;
        tracer_->record(ev);
    }

    WalkResult result;
    result.walk = std::move(current_);
    result.paPage = pa_page;
    result.largePage = large_page;
    result.memAccesses = accesses_;
    result.walkerId = id_;
    result.started = started_;
    result.finished = eq_.now();
    result.levelTicks = levelTicks_;

    busy_ = false;
    // Move the callback out before invoking: the IOMMU may immediately
    // restart this walker from inside the callback.
    auto done = std::move(onDone_);
    done(std::move(result));
}

void
PageTableWalker::fault()
{
    sim::debug::log("walks", eq_.now(), "walk faulted va=", std::hex,
                    current_.request.vaPage, std::dec, " level=",
                    level_, " accesses=", accesses_);
    // No WalkDone trace and no walksDone_ increment: the walk is not
    // done — it parks in the IOMMU's faulted list and completes after
    // the fault is serviced. The IOMMU records FaultRaised instead.
    WalkResult result;
    result.walk = std::move(current_);
    result.faulted = true;
    result.faultLevel = level_;
    result.memAccesses = accesses_;
    result.walkerId = id_;
    result.started = started_;
    result.finished = eq_.now();
    result.levelTicks = levelTicks_;

    busy_ = false;
    auto done = std::move(onDone_);
    done(std::move(result));
}

} // namespace gpuwalk::iommu
