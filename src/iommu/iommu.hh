/**
 * @file
 * The IOMMU: the CPU-complex component servicing the GPU's address
 * translation requests (paper §II-B).
 *
 * Contains two small TLB levels, the page-walk request buffer, the
 * page walk caches, and a pool of independent page table walkers. The
 * pluggable WalkScheduler decides the service order of buffered
 * requests — the paper's entire contribution lives in that decision.
 *
 * Invariant: the walk buffer is non-empty only while every walker is
 * busy; a newly arriving request therefore starts walking immediately
 * whenever a walker is idle, exactly as in the paper ("the scheduler
 * plays no role and no scanning is involved" in that case). When the
 * buffer itself is full, requests wait in an overflow FIFO in strict
 * arrival order — the buffer capacity is the scheduler's lookahead
 * window (Fig. 14).
 */

#ifndef GPUWALK_IOMMU_IOMMU_HH
#define GPUWALK_IOMMU_IOMMU_HH

#include <array>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "core/pending_walk.hh"
#include "core/walk_scheduler.hh"
#include "iommu/page_table_walker.hh"
#include "iommu/page_walk_cache.hh"
#include "iommu/prefetch/translation_prefetcher.hh"
#include "iommu/walk_metrics.hh"
#include "mem/backing_store.hh"
#include "mem/cache.hh"
#include "mem/request.hh"
#include "mem/types.hh"
#include "sim/event_queue.hh"
#include "sim/flat_map.hh"
#include "sim/rate_limiter.hh"
#include "sim/stats.hh"
#include "tlb/channel_port.hh"
#include "tlb/set_assoc_tlb.hh"
#include "tlb/translation.hh"

namespace gpuwalk::sim {
class Auditor;
} // namespace gpuwalk::sim

namespace gpuwalk::vm {
class Gmmu;
} // namespace gpuwalk::vm

namespace gpuwalk::iommu {

/**
 * How speculative walks — Wasp leader lookahead and prefetcher
 * predictions — are admitted into the walk path.
 */
enum class SpecAdmission : std::uint8_t
{
    /**
     * Prefetch predictions issue only into a fully idle walk path
     * (idle walker, empty buffer and overflow) — the strictly
     * idle-bandwidth gate of the original prefetcher. Leader walks
     * still buffer in the speculative class (they cannot be dropped)
     * and dispatch whenever no demand walk is eligible.
     */
    Idle,

    /**
     * The last specReservedWalkers walkers are reserved for
     * speculation: demand walks never dispatch onto them, so the
     * speculative class always owns that much walk bandwidth, and
     * predictions are buffered rather than dropped when the path is
     * busy.
     */
    Reserved,

    /**
     * Token budget: up to specBudgetTokens speculative admissions per
     * window of specBudgetWindow demand dispatches. Predictions are
     * buffered in the speculative class and dispatch only when no
     * demand walk is eligible (like Idle), but admission no longer
     * requires the whole path to be idle.
     */
    Budget,
};

/** Short lowercase name of @p a ("idle", "reserved", "budget"). */
const char *toString(SpecAdmission a);

/** Parses a --spec-admission value; fatal on unknown names. */
SpecAdmission specAdmissionFromString(const std::string &name);

/** Per-run speculative walk-class accounting. */
struct SpecSummary
{
    std::uint64_t admitted = 0;     ///< entries admitted to the class
    std::uint64_t dispatched = 0;   ///< dispatched as PickReason::Speculative
    std::uint64_t promoted = 0;     ///< leader walks promoted to demand
    std::uint64_t droppedStale = 0; ///< aged predictions cancelled unissued
    std::uint64_t leaderWalks = 0;  ///< leader-originated walk requests
};

/** IOMMU structure sizes and latencies (Table I defaults). */
struct IommuConfig
{
    unsigned l1TlbEntries = 32;    ///< fully associative
    unsigned l2TlbEntries = 256;
    unsigned l2TlbAssociativity = 16;

    unsigned bufferEntries = 256;  ///< walk-request buffer (Fig. 14)
    unsigned numWalkers = 8;       ///< page table walkers (Fig. 13)

    /** GPU -> IOMMU request travel time (off-chip hop). */
    sim::Tick hopLatency = 50 * 500;

    /** IOMMU TLB lookup time. */
    sim::Tick tlbLatency = 2 * 500;

    /** Front-end acceptance rate: one request per period. */
    sim::Tick frontPortPeriod = 1 * 500;

    PwcConfig pwc;

    /**
     * Route walker PTE fetches through a CPU-complex cache before
     * DRAM (as gem5's walker does). Page-table lines are hot — one
     * leaf PT page maps 2 MB — so this cache is what keeps walk
     * service latency in the tens-of-cycles range the paper's
     * latency figures imply.
     */
    /**
     * Translation prefetching (an extension beyond the paper, in the
     * spirit of its related-work TLB prefetchers [44]): after a
     * demand touch of page P, the configured policy (next-page or
     * SPP signature-path) proposes pages to walk speculatively into
     * idle walkers, filling the IOMMU TLBs. Strictly idle-bandwidth,
     * so demand traffic is never delayed.
     */
    PrefetchConfig prefetch;

    /** Speculative-walk admission policy (leader walks, prefetch). */
    SpecAdmission specAdmission = SpecAdmission::Idle;

    /** Reserved policy: walkers set aside for the speculative class
     *  (clamped so at least one walker always serves demand). */
    unsigned specReservedWalkers = 2;

    /** Budget policy: speculative admissions allowed per window. */
    unsigned specBudgetTokens = 4;

    /** Budget policy: window length, in demand dispatches. */
    unsigned specBudgetWindow = 32;

    /**
     * A speculative entry older than this (ticks) is acted on at the
     * next dispatch opportunity: a leader walk is *promoted* into the
     * demand class with a fresh sequence number (an instruction is
     * blocked on it — lookahead must not become starvation), while an
     * aged prefetch prediction is dropped as stale. 400 GPU cycles of
     * headroom by default.
     */
    sim::Tick specPromoteThreshold = 400 * 500;

    bool useWalkCache = true;
    mem::CacheConfig walkCache{"ptwcache", 1024 * 1024, 16,
                               mem::cacheLineSize, 40 * 500, 2 * 500,
                               64};
};

/** The IOMMU model; plugs into the GPU TLB hierarchy's miss path. */
class Iommu : public tlb::TranslationService
{
  public:
    /**
     * @param eq Event queue.
     * @param cfg Structure sizes/latencies.
     * @param scheduler The walk scheduling policy (owned).
     * @param memory Where walkers issue PTE reads (DRAM controller).
     * @param store Functional memory holding the page table bytes.
     * @param page_table_root Physical base of the PML4.
     */
    Iommu(sim::EventQueue &eq, const IommuConfig &cfg,
          std::unique_ptr<core::WalkScheduler> scheduler,
          mem::MemoryDevice &memory, mem::BackingStore &store,
          mem::Addr page_table_root);

    /**
     * Attaches the page-table root of a further address space
     * (tenant). The constructor registers @p page_table_root as
     * ContextId 0; every additional tenant must register before its
     * first translation arrives — walking an unregistered context is
     * fatal (see PageWalkCache::rootOf()).
     */
    void
    registerContext(ContextId ctx, mem::Addr root)
    {
        pwc_.registerContext(ctx, root);
    }

    /** Entry point for GPU L2 TLB misses. Pays the GPU→IOMMU hop
     *  latency internally (direct wiring; unit tests, interposers). */
    void translate(tlb::TranslationRequest req) override;

    /**
     * Entry point for requests arriving through the translate channel
     * (system::System's port wiring): the channel has already carried
     * the hop latency, so the request goes straight to the front port.
     */
    void deliverTranslate(tlb::TranslationRequest req);

    /**
     * Routes completed translations (IOMMU TLB hits and finished
     * walks) back through @p ch instead of completing them in place,
     * so the callback runs in the GPU's domain. nullptr restores
     * direct completion.
     */
    void setReplyChannel(tlb::TranslationReplyChannel *ch)
    {
        replyChannel_ = ch;
    }

    /**
     * Attaches a lifecycle tracer to the walk path (this component and
     * every walker). nullptr detaches.
     */
    void setTracer(trace::Tracer *tracer);

    /**
     * Attaches the demand-paging GMMU. Walkers may then terminate at
     * non-present entries: the walk parks in a faulted list, the first
     * parker raises a far fault (later ones coalesce), and the GMMU's
     * service callback re-enters all parked walks into scheduling with
     * fresh sequence numbers. Every walk pins its page against
     * eviction from enqueue to completion. nullptr detaches.
     */
    void attachGmmu(vm::Gmmu *gmmu);

    const IommuConfig &config() const { return cfg_; }
    core::WalkScheduler &scheduler() { return *scheduler_; }
    PageWalkCache &pwc() { return pwc_; }
    WalkMetrics &metrics() { return metrics_; }
    const WalkMetrics &metrics() const { return metrics_; }
    tlb::SetAssocTlb &l1Tlb() { return l1Tlb_; }
    tlb::SetAssocTlb &l2Tlb() { return l2Tlb_; }

    /** The walker-side cache, or nullptr when disabled. */
    mem::Cache *walkCache() { return walkCache_.get(); }

    /**
     * Registers this IOMMU's conservation invariants: walk/request
     * counter identities, buffer+overflow drain, walker occupancy, and
     * the buffered seq/bypassed consistency rules. Call before the run
     * starts.
     */
    void registerInvariants(sim::Auditor &auditor);

    /** Translation requests received from the GPU TLB hierarchy. */
    std::uint64_t requests() const { return requests_.value(); }

    /** Requests that hit in the IOMMU's own TLBs. */
    std::uint64_t tlbHits() const { return tlbHits_.value(); }

    /** Requests that entered the walk path (missed both IOMMU TLBs). */
    std::uint64_t walkRequests() const { return walkRequests_.value(); }

    /** Walks completed. */
    std::uint64_t walksCompleted() const
    {
        return walksCompleted_.value();
    }

    /** Speculative translation walks issued. */
    std::uint64_t prefetches() const { return prefetches_.value(); }

    /** The active prediction policy, or nullptr when prefetch is off. */
    TranslationPrefetcher *prefetcher() { return prefetcher_.get(); }

    /** Per-run prefetcher accounting (enabled=false when off). */
    PrefetchSummary prefetchSummary() const;

    /** Per-run speculative-class accounting. */
    SpecSummary
    specSummary() const
    {
        SpecSummary s;
        s.admitted = specAdmitted_.value();
        s.dispatched = specDispatched_.value();
        s.promoted = specPromoted_.value();
        s.droppedStale = specDroppedStale_.value();
        s.leaderWalks = leaderWalks_.value();
        return s;
    }

    /** Entries currently waiting in the speculative class. */
    std::size_t specQueued() const { return buffer_.specCount(); }

    /**
     * Distinct (ctx, page) walks currently in flight — buffered,
     * overflowed, walking, or parked on a fault. Test accessor for
     * the prefetch dedup filter.
     */
    std::uint64_t
    inflightForPage(ContextId ctx, mem::Addr va_page) const
    {
        const auto it = inflight_.find(mem::pageCtxKey(ctx, va_page));
        return it == inflight_.end() ? 0 : it->second;
    }

    /** Requests that waited in the overflow FIFO. */
    std::uint64_t overflowed() const { return overflowed_.value(); }

    /** Walks currently parked on unserviced far faults. */
    std::uint64_t faultedWalks() const { return faultedParked_; }

    /** Per-tenant walk-path accounting (demand walks only). */
    struct TenantCounters
    {
        std::uint64_t walkRequests = 0;   ///< demand walks enqueued
        std::uint64_t walksCompleted = 0; ///< demand walks finished
        std::uint64_t dispatches = 0;     ///< scheduler-mediated picks
        std::uint64_t queueWaitTicks = 0; ///< cumulative buffer wait
        std::uint64_t serviceTicks = 0;   ///< cumulative walker service

        /** Demand walks currently buffered, overflowed, or walking. */
        std::uint64_t inflight() const
        {
            return walkRequests - walksCompleted;
        }
    };

    /**
     * Counters of tenant @p ctx (zero-initialised if it never sent a
     * walk). Indexed by ContextId; see tenantLimit().
     */
    const TenantCounters &
    tenantCounters(ContextId ctx) const
    {
        static const TenantCounters zero{};
        return ctx < tenants_.size() ? tenants_[ctx] : zero;
    }

    /** One past the highest ContextId that ever sent a walk. */
    std::size_t tenantLimit() const { return tenants_.size(); }

    /** Tenant @p ctx's current walk-buffer occupancy. */
    std::size_t
    tenantBufferOccupancy(ContextId ctx) const
    {
        return buffer_.contextCount(ctx);
    }

    /** Bucketed queue-wait / walker-service / per-level breakdown. */
    LatencyBreakdownSummary latencySummary() const;

    /** Walks currently buffered, overflowed, in a walker, or parked
     *  on an unserviced far fault. */
    std::uint64_t
    inflightWalks() const
    {
        std::uint64_t busy = 0;
        for (const auto &w : walkers_)
            busy += w->busy() ? 1 : 0;
        return buffer_.size() + buffer_.specCount() + overflow_.size()
               + busy + faultedParked_;
    }

    sim::StatGroup &stats() { return statGroup_; }

  private:
    void lookupTlbs(tlb::TranslationRequest req);
    void respond(tlb::TranslationRequest req, mem::Addr pa_page,
                 bool large_page, sim::Tick delay);
    void enqueueWalk(tlb::TranslationRequest req);
    void maybePrefetch(mem::Addr touched_va_page, ContextId ctx,
                       std::uint32_t wavefront, bool leader);
    void noteInflight(ContextId ctx, mem::Addr va_page);
    void releaseInflight(ContextId ctx, mem::Addr va_page);
    TenantCounters &tenantSlot(ContextId ctx);
    void admitToBuffer(core::PendingWalk walk);
    void admitSpeculative(core::PendingWalk walk);
    void promoteAgedSpec();
    void dispatchIfPossible();
    void dispatchSpec(PageTableWalker &walker);
    void dispatchTo(PageTableWalker &walker, core::PendingWalk walk,
                    core::PickReason reason);
    void onWalkDone(WalkResult result);
    void handleFaultedWalk(WalkResult result);
    void onFaultServiced(ContextId ctx, mem::Addr va_page);
    void reenterWalk(core::PendingWalk walk);
    PageTableWalker *idleWalker();

    /** Walkers the demand class may dispatch onto: [0, this). */
    unsigned demandWalkerLimit() const;

    /** First idle walker the demand class may use, or nullptr. */
    PageTableWalker *idleDemandWalker();

    /**
     * First idle walker the speculative class may use right now, or
     * nullptr: reserved walkers always qualify; the others only while
     * no demand walk is waiting (speculation never delays demand).
     */
    PageTableWalker *idleSpecWalker();

    sim::EventQueue &eq_;
    IommuConfig cfg_;
    std::unique_ptr<core::WalkScheduler> scheduler_;
    mem::BackingStore &store_;

    sim::RateLimiter frontPort_;
    std::unique_ptr<mem::Cache> walkCache_;
    tlb::SetAssocTlb l1Tlb_;
    tlb::SetAssocTlb l2Tlb_;
    PageWalkCache pwc_;
    mem::Addr pageTableRoot_ = 0;
    core::WalkBuffer buffer_;
    std::deque<core::PendingWalk> overflow_;

    /** Walks parked on an unserviced far fault, keyed by the page
     *  (page-aligned VA | ctx). One raise per key; later walks for the
     *  same page coalesce onto the list. */
    struct FaultedEntry
    {
        std::vector<core::PendingWalk> walks;
        sim::Tick raised = 0;
    };
    vm::Gmmu *gmmu_ = nullptr;
    std::map<std::uint64_t, FaultedEntry> faulted_;
    std::uint64_t faultedParked_ = 0;

    /**
     * In-flight walk counts keyed by mem::pageCtxKey(ctx, page): every
     * walk (demand or prefetch) counts from enqueue/issue until its
     * non-faulted completion, including the time it is parked on a
     * fault. The prefetch issue path consults this so an idle walker
     * never starts a speculative walk for a page another walker — or
     * the buffer — already owns.
     */
    sim::FlatMap<std::uint64_t, std::uint32_t> inflight_;

    /** The active prediction policy (nullptr = prefetch off). */
    std::unique_ptr<TranslationPrefetcher> prefetcher_;

    /** Scratch candidate list (reused across triggers). */
    std::vector<PrefetchCandidate> candidates_;

    /**
     * Keys of pages whose IOMMU TLB entries were filled by a completed
     * prefetch and not yet touched by demand. A demand TLB hit on a
     * member counts it useful; a demand *walk* for a member means the
     * entry was evicted before use (pollution, the wasted-work case);
     * members surviving the run were never demanded at all.
     */
    sim::FlatMap<std::uint64_t, bool> prefetchedUntouched_;

    /** Per-tenant accounting, indexed by ContextId (grown lazily; a
     *  single-tenant run only ever touches slot 0). */
    std::vector<TenantCounters> tenants_;
    std::vector<std::unique_ptr<PageTableWalker>> walkers_;
    WalkMetrics metrics_;
    std::uint64_t nextSeq_ = 0;

    // Budget admission state: tokens left in the current window, and
    // demand dispatches seen since the window opened.
    unsigned specTokens_ = 0;
    unsigned specWindowCount_ = 0;
    trace::Tracer *tracer_ = nullptr;
    tlb::TranslationReplyChannel *replyChannel_ = nullptr;

    sim::StatGroup statGroup_;
    sim::Counter requests_{"requests", "translation requests received"};
    sim::Counter tlbHits_{"tlb_hits", "hits in the IOMMU's own TLBs"};
    sim::Counter walkRequests_{"walk_requests",
                               "requests that required a page walk"};
    sim::Counter walksCompleted_{"walks_completed",
                                 "page walks finished"};
    sim::Counter overflowed_{"overflowed",
                             "requests that waited in the overflow FIFO"};
    sim::Counter prefetches_{"prefetches",
                             "speculative translation walks issued"};
    sim::Counter prefetchCompleted_{
        "prefetch_completed", "speculative walks that filled the TLBs"};
    sim::Counter prefetchUseful_{
        "prefetch_useful", "demand TLB hits on prefetched entries"};
    sim::Counter prefetchEvictedUnused_{
        "prefetch_evicted_unused",
        "prefetched pages demand-walked again after TLB eviction"};
    sim::Counter specAdmitted_{
        "spec_admitted", "walks admitted to the speculative class"};
    sim::Counter specDispatched_{
        "spec_dispatched", "speculative-class walks dispatched"};
    sim::Counter specPromoted_{
        "spec_promoted", "leader walks promoted to demand priority"};
    sim::Counter specDroppedStale_{
        "spec_dropped_stale",
        "aged prefetch predictions cancelled before dispatch"};
    sim::Counter leaderWalks_{
        "leader_walks", "walk requests from Wasp leader wavefronts"};
    sim::Average bufferOccupancy_{"buffer_occupancy",
                                  "walk-buffer depth at arrival"};
    sim::Average walkLatency_{"walk_latency",
                              "walk-path latency, arrival->done (ticks)"};
    sim::Average walkAccessesAvg_{"walk_accesses",
                                  "memory accesses per walk"};

    // Latency breakdown: the two scheduler-controlled hand-off points
    // plus the per-level memory time inside walker service.
    sim::StatGroup latencyGroup_{"latency"};
    sim::Histogram queueWaitHist_{
        "queue_wait", "buffer wait, arrival->dispatch (ticks)",
        latencyBucketBounds()};
    sim::Histogram walkerServiceHist_{
        "walker_service", "walker service, dispatch->done (ticks)",
        latencyBucketBounds()};
    std::array<sim::Histogram, vm::numPtLevels> levelMemHist_{{
        {"mem_l1", "level-1 (PT) PTE fetch latency (ticks)",
         latencyBucketBounds()},
        {"mem_l2", "level-2 (PD) PTE fetch latency (ticks)",
         latencyBucketBounds()},
        {"mem_l3", "level-3 (PDPT) PTE fetch latency (ticks)",
         latencyBucketBounds()},
        {"mem_l4", "level-4 (PML4) PTE fetch latency (ticks)",
         latencyBucketBounds()},
    }};
    sim::Average queueWaitAvg_{"queue_wait_avg",
                               "mean buffer wait (ticks)"};
    sim::Average walkerServiceAvg_{"walker_service_avg",
                                   "mean walker service (ticks)"};
    std::array<sim::Average, vm::numPtLevels> levelMemAvg_{{
        {"mem_l1_avg", "mean level-1 fetch latency (ticks)"},
        {"mem_l2_avg", "mean level-2 fetch latency (ticks)"},
        {"mem_l3_avg", "mean level-3 fetch latency (ticks)"},
        {"mem_l4_avg", "mean level-4 fetch latency (ticks)"},
    }};
};

} // namespace gpuwalk::iommu

#endif // GPUWALK_IOMMU_IOMMU_HH
