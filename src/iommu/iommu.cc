#include "iommu/iommu.hh"

#include <algorithm>

#include "core/srpt_scheduler.hh"
#include "sim/audit.hh"
#include "sim/debug.hh"
#include "vm/gmmu.hh"
#include "vm/page_table.hh"

namespace gpuwalk::iommu {

Iommu::Iommu(sim::EventQueue &eq, const IommuConfig &cfg,
             std::unique_ptr<core::WalkScheduler> scheduler,
             mem::MemoryDevice &memory, mem::BackingStore &store,
             mem::Addr page_table_root)
    : eq_(eq), cfg_(cfg), scheduler_(std::move(scheduler)), store_(store),
      frontPort_(eq, cfg.frontPortPeriod),
      l1Tlb_(tlb::TlbConfig{"iommu_l1tlb", cfg.l1TlbEntries,
                            cfg.l1TlbEntries}),
      l2Tlb_(tlb::TlbConfig{"iommu_l2tlb", cfg.l2TlbEntries,
                            cfg.l2TlbAssociativity}),
      pwc_(cfg.pwc, page_table_root), pageTableRoot_(page_table_root),
      buffer_(cfg.bufferEntries), statGroup_("iommu")
{
    GPUWALK_ASSERT(scheduler_ != nullptr, "IOMMU needs a scheduler");
    GPUWALK_ASSERT(cfg_.numWalkers > 0, "IOMMU needs walkers");

    prefetcher_ = makePrefetcher(cfg_.prefetch);

    // The SRPT analysis scheduler re-probes the PWCs at selection.
    if (auto *srpt = dynamic_cast<core::SrptScheduler *>(
            scheduler_.get())) {
        srpt->setEstimator([this](mem::Addr va_page, tlb::ContextId ctx) {
            return pwc_.peekEstimate(va_page, ctx);
        });
    }

    mem::MemoryDevice *walk_path = &memory;
    if (cfg_.useWalkCache) {
        walkCache_ = std::make_unique<mem::Cache>(eq_, cfg_.walkCache,
                                                  memory);
        walk_path = walkCache_.get();
    }

    walkers_.reserve(cfg_.numWalkers);
    for (unsigned i = 0; i < cfg_.numWalkers; ++i) {
        walkers_.push_back(std::make_unique<PageTableWalker>(
            eq_, *walk_path, store_, pwc_, i));
    }

    statGroup_.add(requests_);
    statGroup_.add(tlbHits_);
    statGroup_.add(walkRequests_);
    statGroup_.add(walksCompleted_);
    statGroup_.add(overflowed_);
    statGroup_.add(prefetches_);
    statGroup_.add(prefetchCompleted_);
    statGroup_.add(prefetchUseful_);
    statGroup_.add(prefetchEvictedUnused_);
    statGroup_.add(specAdmitted_);
    statGroup_.add(specDispatched_);
    statGroup_.add(specPromoted_);
    statGroup_.add(specDroppedStale_);
    statGroup_.add(leaderWalks_);
    specTokens_ = cfg_.specBudgetTokens;
    statGroup_.add(bufferOccupancy_);
    statGroup_.add(walkLatency_);
    statGroup_.add(walkAccessesAvg_);
    latencyGroup_.add(queueWaitHist_);
    latencyGroup_.add(walkerServiceHist_);
    latencyGroup_.add(queueWaitAvg_);
    latencyGroup_.add(walkerServiceAvg_);
    for (auto &h : levelMemHist_)
        latencyGroup_.add(h);
    for (auto &a : levelMemAvg_)
        latencyGroup_.add(a);
    statGroup_.addChild(latencyGroup_);
    statGroup_.addChild(l1Tlb_.stats());
    statGroup_.addChild(l2Tlb_.stats());
    statGroup_.addChild(pwc_.stats());
    if (walkCache_)
        statGroup_.addChild(walkCache_->stats());
}

void
Iommu::setTracer(trace::Tracer *tracer)
{
    tracer_ = tracer;
    for (auto &w : walkers_)
        w->setTracer(tracer);
}

void
Iommu::attachGmmu(vm::Gmmu *gmmu)
{
    gmmu_ = gmmu;
    for (auto &w : walkers_)
        w->allowFaults(gmmu != nullptr);
    if (!gmmu)
        return;
    gmmu->setServiceCallback(
        [this](vm::Gmmu::ContextId ctx, mem::Addr page) {
            onFaultServiced(static_cast<ContextId>(ctx), page);
        });
    // Evictions shoot down the IOMMU's own TLB entries so no stale
    // translation for a non-resident page can hit here. (GPU-side TLB
    // entries are not shot down — a documented model approximation;
    // their stale physical addresses point at frames the GMMU scrubs
    // only after saving content.)
    gmmu->setEvictCallback(
        [this](vm::Gmmu::ContextId ctx, mem::Addr page) {
            l1Tlb_.invalidate(page, static_cast<ContextId>(ctx));
            l2Tlb_.invalidate(page, static_cast<ContextId>(ctx));
        });
}

LatencyBreakdownSummary
Iommu::latencySummary() const
{
    const auto dist = [](const sim::Histogram &h, const sim::Average &a) {
        LatencyBreakdownSummary::Dist d;
        d.bucketCounts.resize(h.buckets());
        for (std::size_t i = 0; i < h.buckets(); ++i)
            d.bucketCounts[i] = h.bucketCount(i);
        d.samples = h.total();
        d.avg = a.mean();
        return d;
    };

    LatencyBreakdownSummary s;
    s.queueWait = dist(queueWaitHist_, queueWaitAvg_);
    s.walkerService = dist(walkerServiceHist_, walkerServiceAvg_);
    for (unsigned l = 0; l < vm::numPtLevels; ++l)
        s.levelMem[l] = dist(levelMemHist_[l], levelMemAvg_[l]);
    return s;
}

void
Iommu::registerInvariants(sim::Auditor &auditor)
{
    auditor.registerInvariant(
        "iommu.walk_conservation", [this](sim::AuditContext &ctx) {
            // Every started walk (demand or prefetch) completes
            // exactly once. A far fault does not break this: the
            // faulted attempt parks and the walk completes after the
            // fault is serviced and it re-walks.
            const std::uint64_t started =
                walkRequests_.value() + prefetches_.value();
            const std::uint64_t done = walksCompleted_.value();
            const bool ok = ctx.final() ? done == started : done <= started;
            ctx.require(ok, started, " walks started vs ", done,
                        " completed");
        });

    auditor.registerInvariant(
        "iommu.request_conservation", [this](sim::AuditContext &ctx) {
            // Every received request is eventually classified as an
            // IOMMU TLB hit or a walk; mid-run some are still in the
            // hop/front-port pipeline.
            const std::uint64_t classified =
                tlbHits_.value() + walkRequests_.value();
            const std::uint64_t received = requests_.value();
            const bool ok = ctx.final() ? classified == received
                                        : classified <= received;
            ctx.require(ok, received, " requests received vs ",
                        classified, " classified (hits + walks)");
        });

    auditor.registerInvariant(
        "iommu.buffer_drained", [this](sim::AuditContext &ctx) {
            if (!ctx.final()) {
                // The buffer holds work only while every walker the
                // demand class may use is busy (the class invariant
                // immediate dispatch relies on).
                if (!buffer_.empty() || !overflow_.empty()) {
                    ctx.require(idleDemandWalker() == nullptr,
                                buffer_.size() + overflow_.size(),
                                " pending walks while a walker idles");
                }
                // Speculative entries wait only while no walker is
                // currently eligible for them.
                if (!buffer_.specEmpty()) {
                    ctx.require(idleSpecWalker() == nullptr,
                                buffer_.specCount(),
                                " speculative walks wait while an"
                                " eligible walker idles");
                }
                return;
            }
            ctx.require(buffer_.empty(), buffer_.size(),
                        " walks stuck in the buffer at drain");
            ctx.require(buffer_.specEmpty(), buffer_.specCount(),
                        " speculative walks stuck at drain");
            ctx.require(overflow_.empty(), overflow_.size(),
                        " walks stuck in the overflow FIFO at drain");
            ctx.require(faulted_.empty(), faultedParked_,
                        " walks parked on unserviced faults at drain");
        });

    auditor.registerInvariant(
        "iommu.spec_class", [this](sim::AuditContext &ctx) {
            // Every speculative admission is accounted for exactly
            // once: dispatched, promoted to the demand class, dropped
            // as stale, or still resident in the spec FIFO.
            const std::uint64_t resident = buffer_.specCount();
            const std::uint64_t accounted = specDispatched_.value()
                                            + specPromoted_.value()
                                            + specDroppedStale_.value()
                                            + resident;
            ctx.require(specAdmitted_.value() == accounted,
                        specAdmitted_.value(), " spec admissions vs ",
                        accounted,
                        " dispatched + promoted + dropped + resident");
            if (ctx.final()) {
                ctx.require(resident == 0, resident,
                            " speculative walks resident at drain");
            }
        });

    auditor.registerInvariant(
        "iommu.fault_parking", [this](sim::AuditContext &ctx) {
            // The parked-walk counter mirrors the faulted lists, and
            // no list lingers empty (service removes the whole entry).
            std::uint64_t parked = 0;
            for (const auto &[key, entry] : faulted_) {
                parked += entry.walks.size();
                ctx.require(!entry.walks.empty(),
                            "empty fault parking list for key ", key);
            }
            ctx.require(parked == faultedParked_, parked,
                        " walks on fault lists vs counter ",
                        faultedParked_);
        });

    auditor.registerInvariant(
        "iommu.walkers_idle", [this](sim::AuditContext &ctx) {
            if (!ctx.final())
                return;
            for (const auto &w : walkers_) {
                ctx.require(!w->busy(), "walker ", w->id(),
                            " still busy at drain");
            }
        });

    auditor.registerInvariant(
        "iommu.tenant_accounting", [this](sim::AuditContext &ctx) {
            // The buffer's per-context occupancy lists must sum to its
            // size, and the per-tenant demand counters must sum to the
            // global ones.
            std::size_t listed = 0;
            for (std::size_t c = 0; c < buffer_.contextLimit(); ++c)
                listed += buffer_.contextCount(
                    static_cast<ContextId>(c));
            ctx.require(listed == buffer_.size(), listed,
                        " walks on per-tenant lists vs buffer size ",
                        buffer_.size());

            std::uint64_t enq = 0, done = 0;
            for (const auto &t : tenants_) {
                enq += t.walkRequests;
                done += t.walksCompleted;
            }
            ctx.require(enq == walkRequests_.value(), enq,
                        " tenant walk requests vs global ",
                        walkRequests_.value());
            // Global walksCompleted_ also counts prefetches; tenant
            // counters are demand-only.
            ctx.require(done + prefetches_.value()
                            == walksCompleted_.value()
                        || !ctx.final(),
                        done, " tenant completions + ",
                        prefetches_.value(), " prefetches vs global ",
                        walksCompleted_.value());
        });

    auditor.registerInvariant(
        "iommu.inflight_tracking", [this](sim::AuditContext &ctx) {
            // The per-(ctx,page) in-flight counts the prefetch dedup
            // filter consults must mirror the real walk population:
            // buffered + overflowed + walking + fault-parked.
            std::uint64_t tracked = 0;
            for (const auto &[key, count] : inflight_) {
                if (!ctx.require(count > 0, "zero in-flight count "
                                 "lingers for key ", key))
                    return;
                tracked += count;
            }
            ctx.require(tracked == inflightWalks(), tracked,
                        " tracked in-flight walks vs ",
                        inflightWalks(), " actual");
            if (ctx.final()) {
                ctx.require(inflight_.empty(), inflight_.size(),
                            " in-flight keys survive the drain");
            }
        });

    auditor.registerInvariant(
        "iommu.buffer_counters", [this](sim::AuditContext &ctx) {
            const bool tracks = scheduler_->tracksAging();
            for (const auto &e : buffer_.entries()) {
                if (!ctx.require(e.seq < nextSeq_, "buffered walk seq ",
                                 e.seq, " >= next seq ", nextSeq_))
                    return;
                // bypassed increments at most once per dispatch, and
                // every dispatch consumed one sequence number.
                if (!ctx.require(e.bypassed < nextSeq_, "walk seq ",
                                 e.seq, " bypassed ", e.bypassed,
                                 " times with only ", nextSeq_,
                                 " arrivals"))
                    return;
                if (!tracks
                    && !ctx.require(e.bypassed == 0, "scheduler '",
                                    scheduler_->name(),
                                    "' skips aging bookkeeping but walk"
                                    " seq ",
                                    e.seq, " shows bypassed=",
                                    e.bypassed))
                    return;
            }
        });
}

void
Iommu::translate(tlb::TranslationRequest req)
{
    ++requests_;
    eq_.scheduleIn(cfg_.hopLatency, [this, r = std::move(req)]() mutable {
        frontPort_.submit([this, r = std::move(r)]() mutable {
            lookupTlbs(std::move(r));
        });
    });
}

void
Iommu::deliverTranslate(tlb::TranslationRequest req)
{
    // The translate channel already carried the hop latency.
    ++requests_;
    frontPort_.submit([this, r = std::move(req)]() mutable {
        lookupTlbs(std::move(r));
    });
}

void
Iommu::respond(tlb::TranslationRequest req, mem::Addr pa_page,
               bool large_page, sim::Tick delay)
{
    if (replyChannel_) {
        replyChannel_->sendAt(eq_.now() + delay,
                              tlb::TranslationReply{std::move(req),
                                                    pa_page, large_page});
        return;
    }
    if (delay == 0) {
        req.complete(pa_page, large_page);
        return;
    }
    eq_.scheduleIn(delay,
                   [r = std::move(req), pa_page, large_page]() mutable {
                       r.complete(pa_page, large_page);
                   });
}

void
Iommu::lookupTlbs(tlb::TranslationRequest r)
{
    // IOMMU TLB lookups (paper step 5). ASID-tagged: an entry never
    // hits across address spaces.
    auto hit = l1Tlb_.lookupEntry(r.vaPage, r.ctx);
    if (!hit)
        hit = l2Tlb_.lookupEntry(r.vaPage, r.ctx);
    if (hit) {
        ++tlbHits_;
        sim::debug::log("tlb", eq_.now(), "IOMMU TLB hit va=",
                        std::hex, r.vaPage, std::dec, " instr=",
                        r.instruction);
        const auto h = *hit;
        if (prefetcher_) {
            // First demand touch of a prefetched translation: the
            // speculation paid off.
            const std::uint64_t key = mem::pageCtxKey(r.ctx, r.vaPage);
            if (const auto pit = prefetchedUntouched_.find(key);
                pit != prefetchedUntouched_.end()) {
                prefetchedUntouched_.erase(pit);
                ++prefetchUseful_;
                if (tracer_) {
                    trace::Event ev;
                    ev.tick = eq_.now();
                    ev.kind = trace::EventKind::PrefetchUseful;
                    ev.ctx = r.ctx;
                    ev.wavefront = r.wavefront;
                    ev.instruction = r.instruction;
                    ev.vaPage = r.vaPage;
                    tracer_->record(ev);
                }
            }
            // A hit is still a demand touch: without this the stream
            // starves as soon as the prefetcher starts covering it.
            const mem::Addr va = r.vaPage;
            const ContextId ctx = r.ctx;
            const std::uint32_t wavefront = r.wavefront;
            const bool leader = r.leader;
            respond(std::move(r), h.paPage, h.largePage,
                    cfg_.tlbLatency);
            maybePrefetch(va, ctx, wavefront, leader);
            return;
        }
        respond(std::move(r), h.paPage, h.largePage, cfg_.tlbLatency);
        return;
    }
    eq_.scheduleIn(cfg_.tlbLatency,
                   [this, r = std::move(r)]() mutable {
                       enqueueWalk(std::move(r));
                   });
}

void
Iommu::enqueueWalk(tlb::TranslationRequest req)
{
    ++walkRequests_;
    bufferOccupancy_.sample(static_cast<double>(buffer_.size()));

    core::PendingWalk walk;
    walk.request = std::move(req);
    walk.arrival = eq_.now();
    walk.seq = nextSeq_++;
    metrics_.onArrival(walk.request.instruction);
    ++tenantSlot(walk.request.ctx).walkRequests;
    noteInflight(walk.request.ctx, walk.request.vaPage);
    if (prefetcher_) {
        // A demand *walk* for a prefetched page means the prefetched
        // TLB entry was evicted before its first use: pure pollution.
        const std::uint64_t key =
            mem::pageCtxKey(walk.request.ctx, walk.request.vaPage);
        if (const auto pit = prefetchedUntouched_.find(key);
            pit != prefetchedUntouched_.end()) {
            prefetchedUntouched_.erase(pit);
            ++prefetchEvictedUnused_;
        }
    }
    // Pin the page for the walk's whole lifetime (buffer, walker,
    // fault parking): the GMMU must never evict a page with an
    // in-flight walk.
    if (gmmu_)
        gmmu_->pin(walk.request.ctx, walk.request.vaPage);

    if (tracer_) {
        trace::Event ev;
        ev.tick = eq_.now();
        ev.kind = trace::EventKind::Enqueued;
        ev.ctx = walk.request.ctx;
        ev.wavefront = walk.request.wavefront;
        ev.instruction = walk.request.instruction;
        ev.vaPage = walk.request.vaPage;
        ev.arg0 = buffer_.size();
        tracer_->record(ev);
    }

    // Leader-originated walks (Wasp) join the speculative class: they
    // warm the TLBs ahead of the follower pack and must never delay a
    // demand walk. They are real requests and cannot be dropped, so a
    // full spec FIFO demotes the walk to the demand class at admission.
    if (walk.request.leader) {
        ++leaderWalks_;
        if (!buffer_.specFull()) {
            admitSpeculative(std::move(walk));
            dispatchIfPossible();
            return;
        }
    }

    // An idle demand-eligible walker implies the buffer and overflow
    // FIFO are empty (dispatch drains the buffer whenever a walker
    // frees up), so the new request starts immediately and the
    // scheduler plays no role.
    if (PageTableWalker *w = idleDemandWalker()) {
        GPUWALK_ASSERT(buffer_.empty() && overflow_.empty(),
                       "idle walker with pending requests");
        dispatchTo(*w, std::move(walk), core::PickReason::Immediate);
        return;
    }

    if (buffer_.full()) {
        ++overflowed_;
        sim::debug::log("sched", eq_.now(), "overflow va=", std::hex,
                        walk.request.vaPage, std::dec, " instr=",
                        walk.request.instruction, " depth=",
                        overflow_.size());
        overflow_.push_back(std::move(walk));
        return;
    }
    admitToBuffer(std::move(walk));
}

void
Iommu::admitSpeculative(core::PendingWalk walk)
{
    ++specAdmitted_;
    if (tracer_) {
        trace::Event ev;
        ev.tick = eq_.now();
        ev.kind = trace::EventKind::SpecAdmitted;
        ev.ctx = walk.request.ctx;
        ev.wavefront = walk.request.wavefront;
        ev.instruction = walk.request.instruction;
        ev.vaPage = walk.request.vaPage;
        ev.arg0 = static_cast<std::uint64_t>(cfg_.specAdmission);
        ev.arg1 = buffer_.specCount() + 1;
        tracer_->record(ev);
    }
    buffer_.specPush(std::move(walk));
}

void
Iommu::admitToBuffer(core::PendingWalk walk)
{
    // Arrival-time scoring (paper actions 1-a and 1-b): probe the PWCs
    // for this request's own cost, then fold it into the running score
    // of every buffered request of the same instruction.
    if (scheduler_->needsScores()) {
        const unsigned estimate =
            pwc_.probeEstimate(walk.request.vaPage, walk.request.ctx);
        walk.estimatedAccesses = estimate;

        const std::uint64_t new_score =
            buffer_.instructionScore(walk.request.instruction) + estimate;
        buffer_.rescoreInstruction(walk.request.instruction, new_score);
        walk.score = new_score;

        if (tracer_) {
            trace::Event ev;
            ev.tick = eq_.now();
            ev.kind = trace::EventKind::Scored;
            ev.ctx = walk.request.ctx;
            ev.wavefront = walk.request.wavefront;
            ev.instruction = walk.request.instruction;
            ev.vaPage = walk.request.vaPage;
            ev.arg0 = estimate;
            ev.arg1 = new_score;
            tracer_->record(ev);
        }
    }
    buffer_.insert(std::move(walk));
}

PageTableWalker *
Iommu::idleWalker()
{
    for (auto &w : walkers_) {
        if (!w->busy())
            return w.get();
    }
    return nullptr;
}

unsigned
Iommu::demandWalkerLimit() const
{
    if (cfg_.specAdmission != SpecAdmission::Reserved)
        return cfg_.numWalkers;
    // Clamp so at least one walker always serves demand.
    const unsigned reserved =
        std::min(cfg_.specReservedWalkers, cfg_.numWalkers - 1);
    return cfg_.numWalkers - reserved;
}

PageTableWalker *
Iommu::idleDemandWalker()
{
    const unsigned limit = demandWalkerLimit();
    for (unsigned i = 0; i < limit; ++i) {
        if (!walkers_[i]->busy())
            return walkers_[i].get();
    }
    return nullptr;
}

PageTableWalker *
Iommu::idleSpecWalker()
{
    // Reserved walkers first: keep the demand-eligible ones free for
    // the next demand arrival when there is a choice.
    const unsigned limit = demandWalkerLimit();
    for (unsigned i = limit; i < cfg_.numWalkers; ++i) {
        if (!walkers_[i]->busy())
            return walkers_[i].get();
    }
    // Non-reserved walkers carry speculation only while no demand
    // walk is waiting for one: speculation never delays demand.
    if (!buffer_.empty() || !overflow_.empty())
        return nullptr;
    for (unsigned i = 0; i < limit; ++i) {
        if (!walkers_[i]->busy())
            return walkers_[i].get();
    }
    return nullptr;
}

void
Iommu::promoteAgedSpec()
{
    while (!buffer_.specEmpty()
           && eq_.now() - buffer_.specFront().arrival
                  >= cfg_.specPromoteThreshold) {
        core::PendingWalk walk = buffer_.specPop();
        if (walk.isPrefetch) {
            // A prediction nobody had bandwidth for this long is
            // stale: cancel it rather than spend a walker on it.
            ++specDroppedStale_;
            releaseInflight(walk.request.ctx, walk.request.vaPage);
            if (gmmu_)
                gmmu_->unpin(walk.request.ctx, walk.request.vaPage);
            continue;
        }
        // An aged leader walk is a real request going hungry: promote
        // it into the demand class. Fresh seq for the buffer's
        // monotone-insert discipline; the original arrival is kept so
        // queue-wait accounting sees the full wait.
        ++specPromoted_;
        walk.seq = nextSeq_++;
        if (buffer_.full()) {
            ++overflowed_;
            overflow_.push_back(std::move(walk));
        } else {
            admitToBuffer(std::move(walk));
        }
    }
}

void
Iommu::dispatchIfPossible()
{
    promoteAgedSpec();

    while (!buffer_.empty()) {
        PageTableWalker *w = idleDemandWalker();
        if (!w)
            break;
        const std::size_t idx = scheduler_->selectNext(buffer_);
        core::PendingWalk walk = buffer_.extract(idx);
        scheduler_->onDispatch(buffer_, walk);
        dispatchTo(*w, std::move(walk), scheduler_->lastPickReason());

        // A buffer slot freed: admit the oldest overflowed request.
        if (!overflow_.empty() && !buffer_.full()) {
            admitToBuffer(std::move(overflow_.front()));
            overflow_.pop_front();
        }
    }

    // Speculative class: scheduled only onto walkers no demand walk
    // is eligible for right now.
    while (!buffer_.specEmpty()) {
        PageTableWalker *w = idleSpecWalker();
        if (!w)
            return;
        dispatchSpec(*w);
    }
}

void
Iommu::dispatchSpec(PageTableWalker &walker)
{
    core::PendingWalk walk = buffer_.specPop();
    if (walk.isPrefetch) {
        // Re-probe at dispatch: a demand walk may have filled this
        // translation while the prediction waited.
        if (l1Tlb_.probe(walk.request.vaPage, walk.request.ctx)
            || l2Tlb_.probe(walk.request.vaPage, walk.request.ctx)) {
            ++specDroppedStale_;
            releaseInflight(walk.request.ctx, walk.request.vaPage);
            if (gmmu_)
                gmmu_->unpin(walk.request.ctx, walk.request.vaPage);
            return; // walker stays idle; caller loops
        }
        // Counted at dispatch, not admission: only walks that
        // actually start participate in walk conservation.
        ++prefetches_;
        ++specDispatched_;
        if (tracer_) {
            trace::Event ev;
            ev.tick = eq_.now();
            ev.kind = trace::EventKind::PrefetchIssued;
            ev.ctx = walk.request.ctx;
            ev.walker = walker.id();
            ev.wavefront = walk.request.wavefront;
            ev.vaPage = walk.request.vaPage;
            ev.arg0 = walk.specConfidencePermille;
            ev.arg1 = walk.specTriggerPage;
            tracer_->record(ev);
        }
        walker.start(std::move(walk), [this](WalkResult r) {
            onWalkDone(std::move(r));
        });
        return;
    }
    ++specDispatched_;
    dispatchTo(walker, std::move(walk), core::PickReason::Speculative);
}

void
Iommu::dispatchTo(PageTableWalker &walker, core::PendingWalk walk,
                  core::PickReason reason)
{
    sim::debug::log("sched", eq_.now(), "dispatch va=", std::hex,
                    walk.request.vaPage, std::dec, " instr=",
                    walk.request.instruction, " score=", walk.score,
                    " buffered=", buffer_.size());
    metrics_.onDispatch(walk.request.instruction);

    // Budget admission: demand dispatches clock the tumbling window
    // that refills the speculative admission tokens.
    if (cfg_.specAdmission == SpecAdmission::Budget
        && reason != core::PickReason::Speculative) {
        if (++specWindowCount_ >= cfg_.specBudgetWindow) {
            specWindowCount_ = 0;
            specTokens_ = cfg_.specBudgetTokens;
        }
    }

    const sim::Tick wait = eq_.now() - walk.arrival;
    queueWaitHist_.sample(wait);
    queueWaitAvg_.sample(static_cast<double>(wait));
    {
        TenantCounters &t = tenantSlot(walk.request.ctx);
        t.queueWaitTicks += wait;
        if (reason != core::PickReason::Immediate)
            ++t.dispatches;
    }
    if (tracer_) {
        trace::Event ev;
        ev.tick = eq_.now();
        ev.kind = trace::EventKind::Scheduled;
        ev.ctx = walk.request.ctx;
        ev.walker = walker.id();
        ev.wavefront = walk.request.wavefront;
        ev.instruction = walk.request.instruction;
        ev.vaPage = walk.request.vaPage;
        ev.arg0 = static_cast<std::uint64_t>(reason);
        ev.arg1 = wait;
        tracer_->record(ev);
    }
    walker.start(std::move(walk),
                 [this](WalkResult result) { onWalkDone(std::move(result)); });
}

void
Iommu::onWalkDone(WalkResult result)
{
    if (result.faulted) {
        handleFaultedWalk(std::move(result));
        return;
    }

    ++walksCompleted_;
    releaseInflight(result.walk.request.ctx, result.walk.request.vaPage);
    if (gmmu_) {
        gmmu_->unpin(result.walk.request.ctx,
                     result.walk.request.vaPage);
        gmmu_->touch(result.walk.request.ctx,
                     result.walk.request.vaPage);
    }
    if (!result.walk.isPrefetch) {
        walkLatency_.sample(
            static_cast<double>(result.finished
                                - result.walk.arrival));
        walkAccessesAvg_.sample(
            static_cast<double>(result.memAccesses));
        metrics_.onComplete(result.walk.request.instruction,
                            result.walk.arrival, result.finished,
                            result.memAccesses);

        const sim::Tick service = result.finished - result.started;
        TenantCounters &t = tenantSlot(result.walk.request.ctx);
        ++t.walksCompleted;
        t.serviceTicks += service;
        walkerServiceHist_.sample(service);
        walkerServiceAvg_.sample(static_cast<double>(service));
        for (unsigned l = 0; l < vm::numPtLevels; ++l) {
            if (result.levelTicks[l] > 0) {
                levelMemHist_[l].sample(result.levelTicks[l]);
                levelMemAvg_[l].sample(
                    static_cast<double>(result.levelTicks[l]));
            }
        }
    }

    // Fill the IOMMU's TLBs; the GPU-side fills happen in the request's
    // completion path inside the TLB hierarchy.
    l1Tlb_.insert(result.walk.request.vaPage, result.paPage,
                  result.largePage, result.walk.request.ctx);
    l2Tlb_.insert(result.walk.request.vaPage, result.paPage,
                  result.largePage, result.walk.request.ctx);

    const mem::Addr completedVa = result.walk.request.vaPage;
    const ContextId completedCtx = result.walk.request.ctx;
    const std::uint32_t wavefront = result.walk.request.wavefront;
    const bool isPrefetch = result.walk.isPrefetch;
    const bool leader = result.walk.request.leader;
    if (isPrefetch) {
        // No coalescer asked for this translation, so there is nothing
        // to respond to: a synthetic TranslationReply would break the
        // reply channel's request/reply conservation. The walk's whole
        // value is the TLB fills above.
        ++prefetchCompleted_;
        prefetchedUntouched_.try_emplace(
            mem::pageCtxKey(completedCtx, completedVa), true);
    } else {
        respond(std::move(result.walk.request), result.paPage,
                result.largePage, 0);
    }

    // The finishing walker is idle now: service the backlog.
    dispatchIfPossible();

    if (prefetcher_ && !isPrefetch)
        maybePrefetch(completedVa, completedCtx, wavefront, leader);
}

void
Iommu::handleFaultedWalk(WalkResult result)
{
    GPUWALK_ASSERT(gmmu_, "faulted walk without a GMMU attached");
    // Prefetch walks only start on pages that are resident and pinned
    // at issue time, so they can never observe a non-present entry.
    GPUWALK_ASSERT(!result.walk.isPrefetch, "prefetch walk faulted");

    const ContextId ctx = result.walk.request.ctx;
    const mem::Addr page = result.walk.request.vaPage;
    const std::uint64_t key = mem::pageCtxKey(ctx, page);

    const auto [it, fresh] = faulted_.try_emplace(key);
    if (fresh) {
        it->second.raised = eq_.now();
        if (tracer_) {
            trace::Event ev;
            ev.tick = eq_.now();
            ev.kind = trace::EventKind::FaultRaised;
            ev.level = static_cast<std::uint8_t>(result.faultLevel);
            ev.ctx = ctx;
            ev.walker = result.walkerId;
            ev.wavefront = result.walk.request.wavefront;
            ev.instruction = result.walk.request.instruction;
            ev.vaPage = page;
            ev.arg0 = 1; // walks parked behind the fault so far
            tracer_->record(ev);
        }
        gmmu_->raiseFault(ctx, page);
    } else {
        gmmu_->noteWaiter(ctx, page);
    }
    it->second.walks.push_back(std::move(result.walk));
    ++faultedParked_;

    // The faulting walker is idle now: service the backlog.
    dispatchIfPossible();
}

void
Iommu::onFaultServiced(ContextId ctx, mem::Addr va_page)
{
    const std::uint64_t key = mem::pageCtxKey(ctx, va_page);
    const auto it = faulted_.find(key);
    GPUWALK_ASSERT(it != faulted_.end(),
                   "fault serviced with no parked walks for va ",
                   va_page);
    FaultedEntry entry = std::move(it->second);
    faulted_.erase(it);
    GPUWALK_ASSERT(faultedParked_ >= entry.walks.size(),
                   "parked-walk counter underflow");
    faultedParked_ -= entry.walks.size();

    if (tracer_) {
        trace::Event ev;
        ev.tick = eq_.now();
        ev.kind = trace::EventKind::FaultServiced;
        ev.ctx = ctx;
        ev.walker = trace::noWalker;
        ev.wavefront = entry.walks.front().request.wavefront;
        ev.instruction = entry.walks.front().request.instruction;
        ev.vaPage = va_page;
        ev.arg0 = entry.walks.size();
        ev.arg1 = eq_.now() - entry.raised;
        tracer_->record(ev);
    }
    sim::debug::log("sched", eq_.now(), "fault serviced va=", std::hex,
                    va_page, std::dec, " releasing ",
                    entry.walks.size(), " walks");

    for (auto &walk : entry.walks)
        reenterWalk(std::move(walk));
}

void
Iommu::reenterWalk(core::PendingWalk walk)
{
    // A re-entered walk is a new scheduling arrival: the buffer's
    // monotone-seq insert and the aging bookkeeping both demand a
    // fresh sequence number, and queue-wait restarts so the fault
    // service time is accounted by the GMMU's latency histogram, not
    // double-counted as buffer wait. It is NOT a new walk request:
    // walkRequests_, tenant arrival counters, metrics_.onArrival and
    // the Enqueued trace event all fired at the original arrival.
    walk.seq = nextSeq_++;
    walk.arrival = eq_.now();

    // Faulted leader walks re-enter as demand: after a far-fault
    // round trip the lookahead advantage is gone, and the page is
    // resident now, so the walk should complete at demand priority.
    if (PageTableWalker *w = idleDemandWalker()) {
        GPUWALK_ASSERT(buffer_.empty() && overflow_.empty(),
                       "idle walker with pending requests");
        dispatchTo(*w, std::move(walk), core::PickReason::Immediate);
        return;
    }
    if (buffer_.full()) {
        ++overflowed_;
        overflow_.push_back(std::move(walk));
        return;
    }
    admitToBuffer(std::move(walk));
}

void
Iommu::maybePrefetch(mem::Addr touched_va_page, ContextId ctx,
                     std::uint32_t wavefront, bool leader)
{
    if (!prefetcher_)
        return;

    // Train on every demand touch, whether or not any prediction can
    // issue right now — the pattern tables must keep learning even
    // while the walkers are saturated.
    candidates_.clear();
    prefetcher_->onDemandTouch(ctx, wavefront, touched_va_page,
                               candidates_, leader);

    if (cfg_.specAdmission != SpecAdmission::Idle) {
        // Reserved/budget admission: predictions buffer into the
        // speculative class and dispatch under its walker-eligibility
        // rules rather than demanding an idle walker this instant.
        bool admitted = false;
        for (const PrefetchCandidate &cand : candidates_) {
            if (buffer_.specFull())
                break;
            if (cfg_.specAdmission == SpecAdmission::Budget
                && specTokens_ == 0)
                break;
            const mem::Addr page = cand.vaPage;
            if (l1Tlb_.probe(page, ctx) || l2Tlb_.probe(page, ctx))
                continue;
            if (inflight_.contains(mem::pageCtxKey(ctx, page)))
                continue;
            if (gmmu_ && !gmmu_->isResident(ctx, page))
                continue;
            if (!vm::translateFrom(store_, pwc_.rootOf(ctx), page))
                continue;

            if (cfg_.specAdmission == SpecAdmission::Budget)
                --specTokens_;
            noteInflight(ctx, page);
            core::PendingWalk walk;
            walk.request.vaPage = page;
            walk.request.instruction = 0; // reserved prefetch tag
            walk.request.wavefront = wavefront;
            walk.request.ctx = ctx;
            walk.arrival = eq_.now();
            walk.seq = nextSeq_++;
            walk.isPrefetch = true;
            walk.specConfidencePermille =
                static_cast<std::uint32_t>(cand.confidence * 1000.0);
            walk.specTriggerPage = touched_va_page;
            // Pinned from admission so the resident check above stays
            // valid until the walk completes or the entry is dropped.
            if (gmmu_)
                gmmu_->pin(ctx, page);
            admitSpeculative(std::move(walk));
            admitted = true;
        }
        if (admitted)
            dispatchIfPossible();
        return;
    }

    for (const PrefetchCandidate &cand : candidates_) {
        // Strictly idle-bandwidth: only when nothing demands service.
        // Checked per candidate — issuing one occupies a walker.
        if (!buffer_.empty() || !overflow_.empty())
            return;
        PageTableWalker *w = idleWalker();
        if (!w)
            return;

        const mem::Addr page = cand.vaPage;
        if (l1Tlb_.probe(page, ctx) || l2Tlb_.probe(page, ctx))
            continue;
        // In-flight dedup: a walk (demand or speculative) for this
        // very translation is already buffered, walking, or parked —
        // a second concurrent walk would be pure waste.
        if (inflight_.contains(mem::pageCtxKey(ctx, page)))
            continue;
        // Functional presence check against the tenant's own page
        // table: never walk into an unmapped page. Under demand
        // paging the page must additionally be resident — a prefetch
        // must never raise a far fault.
        if (gmmu_ && !gmmu_->isResident(ctx, page))
            continue;
        if (!vm::translateFrom(store_, pwc_.rootOf(ctx), page))
            continue;

        ++prefetches_;
        noteInflight(ctx, page);
        core::PendingWalk walk;
        walk.request.vaPage = page;
        walk.request.instruction = 0; // reserved prefetch tag
        walk.request.wavefront = wavefront;
        walk.request.ctx = ctx;
        walk.arrival = eq_.now();
        walk.seq = nextSeq_++;
        walk.isPrefetch = true;
        // The pin taken here (released at completion) keeps the
        // resident check valid for the walk's whole duration.
        if (gmmu_)
            gmmu_->pin(ctx, page);
        if (tracer_) {
            trace::Event ev;
            ev.tick = eq_.now();
            ev.kind = trace::EventKind::PrefetchIssued;
            ev.ctx = ctx;
            ev.walker = w->id();
            ev.wavefront = wavefront;
            ev.vaPage = page;
            ev.arg0 = static_cast<std::uint64_t>(
                cand.confidence * 1000.0);
            ev.arg1 = touched_va_page;
            tracer_->record(ev);
        }
        // Bypass metrics/scheduler: the walker is idle by
        // construction.
        w->start(std::move(walk),
                 [this](WalkResult r) { onWalkDone(std::move(r)); });
    }
}

const char *
toString(SpecAdmission a)
{
    switch (a) {
      case SpecAdmission::Idle:
        return "idle";
      case SpecAdmission::Reserved:
        return "reserved";
      case SpecAdmission::Budget:
        return "budget";
    }
    sim::panic("unknown SpecAdmission");
}

SpecAdmission
specAdmissionFromString(const std::string &name)
{
    if (name == "idle")
        return SpecAdmission::Idle;
    if (name == "reserved")
        return SpecAdmission::Reserved;
    if (name == "budget")
        return SpecAdmission::Budget;
    sim::fatal("unknown spec admission '", name,
               "' (expected idle|reserved|budget)");
}

void
Iommu::noteInflight(ContextId ctx, mem::Addr va_page)
{
    ++inflight_[mem::pageCtxKey(ctx, va_page)];
}

void
Iommu::releaseInflight(ContextId ctx, mem::Addr va_page)
{
    const std::uint64_t key = mem::pageCtxKey(ctx, va_page);
    const auto it = inflight_.find(key);
    GPUWALK_ASSERT(it != inflight_.end() && it->second > 0,
                   "in-flight release with no tracked walk for va ",
                   va_page);
    if (--it->second == 0)
        inflight_.erase(it);
}

PrefetchSummary
Iommu::prefetchSummary() const
{
    PrefetchSummary s;
    s.enabled = prefetcher_ != nullptr;
    s.policy = toString(cfg_.prefetch.kind);
    s.issued = prefetches_.value();
    s.completed = prefetchCompleted_.value();
    s.useful = prefetchUseful_.value();
    s.evictedUnused = prefetchEvictedUnused_.value();
    s.unusedAtEnd = prefetchedUntouched_.size();
    if (s.completed > 0) {
        s.accuracy = static_cast<double>(s.useful)
                     / static_cast<double>(s.completed);
        s.pollution = static_cast<double>(s.evictedUnused)
                      / static_cast<double>(s.completed);
    }
    const std::uint64_t demand = s.useful + walkRequests_.value();
    if (demand > 0)
        s.coverage = static_cast<double>(s.useful)
                     / static_cast<double>(demand);
    return s;
}

Iommu::TenantCounters &
Iommu::tenantSlot(ContextId ctx)
{
    if (tenants_.size() <= ctx)
        tenants_.resize(ctx + 1);
    return tenants_[ctx];
}

} // namespace gpuwalk::iommu
