/**
 * @file
 * Per-SIMD-instruction walk instrumentation.
 *
 * Collects exactly the quantities the paper's motivation and result
 * figures are built from: per-instruction walk counts and memory
 * accesses (Fig. 3), interleaving of walk service (Fig. 5),
 * first/last-completed walk latencies (Figs. 6 and 10), and total walk
 * counts (Fig. 11).
 */

#ifndef GPUWALK_IOMMU_WALK_METRICS_HH
#define GPUWALK_IOMMU_WALK_METRICS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/flat_map.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"
#include "tlb/translation.hh"
#include "vm/page_table.hh"

namespace gpuwalk::iommu {

/**
 * Shared bucket upper bounds (ticks) for the walk-latency breakdown
 * histograms; a final overflow bucket catches everything above. Spans
 * one GPU cycle (500 ticks) up to multi-millisecond stalls.
 */
const std::vector<std::uint64_t> &latencyBucketBounds();

/**
 * Where a walk's time went, split at the two hand-off points the
 * scheduler controls: waiting in the IOMMU buffer, being serviced by a
 * walker, and the per-level memory accesses inside that service time.
 */
struct LatencyBreakdownSummary
{
    /** One bucketed distribution (bounds from latencyBucketBounds()). */
    struct Dist
    {
        /** Per-bucket sample counts; last element is the overflow. */
        std::vector<std::uint64_t> bucketCounts;
        std::uint64_t samples = 0;
        double avg = 0.0; ///< mean latency in ticks (0 if no samples)
    };

    /** Dispatch tick minus arrival tick, per scheduled walk. */
    Dist queueWait;

    /** Walker service time (finished minus started), per walk. */
    Dist walkerService;

    /** Memory latency of each page-table access; index = level - 1. */
    std::array<Dist, vm::numPtLevels> levelMem;
};

/** Aggregated results of one run, computed by WalkMetrics::summarize. */
struct WalkMetricsSummary
{
    /** Instructions that generated at least one page walk. */
    std::uint64_t instructionsWithWalks = 0;

    /** Instructions that generated at least two walks. */
    std::uint64_t multiWalkInstructions = 0;

    /** Multi-walk instructions whose walks were service-interleaved. */
    std::uint64_t interleavedInstructions = 0;

    /** interleaved / multiWalk (Fig. 5 metric). */
    double interleavedFraction = 0.0;

    /** Total page walks serviced (Fig. 11 numerator). */
    std::uint64_t totalWalks = 0;

    /** Total walker memory accesses. */
    std::uint64_t totalMemAccesses = 0;

    /**
     * Mean latency (ticks) of the first-completed walk per multi-walk
     * instruction (Fig. 6 baseline bar).
     */
    double avgFirstCompletedLatency = 0.0;

    /** Mean latency of the last-completed walk (Fig. 6 second bar). */
    double avgLastCompletedLatency = 0.0;

    /**
     * Mean (lastCompletionTick - firstCompletionTick) per multi-walk
     * instruction (the Fig. 10 "latency gap").
     */
    double avgLatencyGap = 0.0;

    /**
     * Per-instruction walker memory accesses, bucketed as in Fig. 3:
     * 1-16, 17-32, 33-48, 49-64, 65-80, 81-256(+).
     */
    std::vector<std::uint64_t> workBucketCounts;
    std::vector<double> workBucketFractions;
    static const std::vector<std::uint64_t> &workBucketBounds();
};

/** Collects per-instruction walk events; summarize() at end of run. */
class WalkMetrics
{
  public:
    /** A walk for @p instr entered the IOMMU walk path. */
    void
    onArrival(tlb::InstructionId instr)
    {
        ++records_[instr].walksArrived;
    }

    /** A walk for @p instr was handed to a walker. */
    void
    onDispatch(tlb::InstructionId instr)
    {
        Record &r = records_[instr];
        const std::uint64_t seq = nextDispatchSeq_++;
        if (r.dispatches == 0)
            r.firstDispatchSeq = seq;
        r.lastDispatchSeq = seq;
        ++r.dispatches;
    }

    /**
     * A walk for @p instr finished.
     * @param arrival When that walk entered the walk path.
     * @param finished Completion tick.
     * @param accesses Memory accesses the walk performed (1-4).
     */
    void
    onComplete(tlb::InstructionId instr, sim::Tick arrival,
               sim::Tick finished, unsigned accesses)
    {
        Record &r = records_[instr];
        ++r.walksCompleted;
        r.memAccesses += accesses;
        const sim::Tick latency = finished - arrival;
        if (r.walksCompleted == 1 || finished < r.firstCompletionTick) {
            r.firstCompletionTick = finished;
            r.firstCompletionLatency = latency;
        }
        if (r.walksCompleted == 1 || finished >= r.lastCompletionTick) {
            r.lastCompletionTick = finished;
            r.lastCompletionLatency = latency;
        }
    }

    /** Number of instructions tracked. */
    std::size_t trackedInstructions() const { return records_.size(); }

    /** Computes the aggregate view. */
    WalkMetricsSummary summarize() const;

    /** Drops all records (e.g., after a warmup phase). */
    void reset() { records_.clear(); }

  private:
    struct Record
    {
        std::uint64_t walksArrived = 0;
        std::uint64_t walksCompleted = 0;
        std::uint64_t memAccesses = 0;
        std::uint64_t dispatches = 0;
        std::uint64_t firstDispatchSeq = 0;
        std::uint64_t lastDispatchSeq = 0;
        sim::Tick firstCompletionTick = 0;
        sim::Tick lastCompletionTick = 0;
        sim::Tick firstCompletionLatency = 0;
        sim::Tick lastCompletionLatency = 0;
    };

    // summarize() iterates this map, but every aggregate it computes is
    // an order-independent sum/count, so flat-hash iteration order (a
    // function of the key set only) cannot perturb results.
    sim::FlatMap<tlb::InstructionId, Record> records_;
    std::uint64_t nextDispatchSeq_ = 0;
};

} // namespace gpuwalk::iommu

#endif // GPUWALK_IOMMU_WALK_METRICS_HH
