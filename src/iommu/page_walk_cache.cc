#include "iommu/page_walk_cache.hh"

namespace gpuwalk::iommu {

PageWalkCache::PageWalkCache(const PwcConfig &cfg, mem::Addr root)
    : cfg_(cfg), statGroup_("pwc")
{
    registerContext(tlb::defaultContext, root);
    GPUWALK_ASSERT(cfg_.entriesPerLevel % cfg_.associativity == 0,
                   "PWC entries not divisible by associativity");
    const std::size_t sets = cfg_.entriesPerLevel / cfg_.associativity;
    for (auto &c : caches_) {
        c.associativity = cfg_.associativity;
        c.sets.assign(sets, std::vector<Entry>(cfg_.associativity));
    }
    statGroup_.add(hits_);
    statGroup_.add(misses_);
    statGroup_.add(fills_);
    statGroup_.add(pinnedSkips_);
}

std::size_t
PageWalkCache::LevelCache::setOf(mem::Addr region) const
{
    // Hash the region base down to a set; the shift removes the
    // guaranteed-zero low bits so neighbouring regions spread out.
    return static_cast<std::size_t>((region >> 21) ^ (region >> 30))
           % sets.size();
}

PageWalkCache::Entry *
PageWalkCache::LevelCache::find(mem::Addr region, ContextId ctx)
{
    for (auto &e : sets[setOf(region)]) {
        if (e.valid && e.regionBase == region && e.ctx == ctx)
            return &e;
    }
    return nullptr;
}

const PageWalkCache::Entry *
PageWalkCache::LevelCache::find(mem::Addr region, ContextId ctx) const
{
    for (const auto &e : sets[setOf(region)]) {
        if (e.valid && e.regionBase == region && e.ctx == ctx)
            return &e;
    }
    return nullptr;
}

void
PageWalkCache::registerContext(ContextId ctx, mem::Addr root)
{
    if (roots_.size() <= ctx) {
        roots_.resize(ctx + 1, 0);
        registered_.resize(ctx + 1, 0);
    }
    GPUWALK_ASSERT(!registered_[ctx], "context ", ctx,
                   " registered twice");
    roots_[ctx] = root;
    registered_[ctx] = 1;
}

bool
PageWalkCache::contextRegistered(ContextId ctx) const
{
    return ctx < registered_.size() && registered_[ctx];
}

mem::Addr
PageWalkCache::rootOf(ContextId ctx) const
{
    GPUWALK_ASSERT(contextRegistered(ctx),
                   "translation for unregistered context ", ctx,
                   " (no page-table root attached)");
    return roots_[ctx];
}

unsigned
PageWalkCache::probeEstimate(mem::Addr va_page, ContextId ctx)
{
    GPUWALK_ASSERT(contextRegistered(ctx),
                   "scoring probe for unregistered context ", ctx);
    // Deepest hit wins: a PD-level entry alone lets the walk jump
    // straight to the leaf (Barr et al.'s "skip, don't walk"), so the
    // caches are searched bottom-up and independently.
    for (unsigned l = 2; l <= vm::numPtLevels; ++l) {
        const auto level = vm::PtLevel{l};
        Entry *e = cacheFor(level).find(
            vm::PageTable::regionBase(va_page, level), ctx);
        if (e) {
            if (e->counter < 3)
                ++e->counter;
            return l - 1;
        }
    }
    return vm::numPtLevels;
}

unsigned
PageWalkCache::peekEstimate(mem::Addr va_page, ContextId ctx) const
{
    for (unsigned l = 2; l <= vm::numPtLevels; ++l) {
        const auto level = vm::PtLevel{l};
        const Entry *e = cacheFor(level).find(
            vm::PageTable::regionBase(va_page, level), ctx);
        if (e)
            return l - 1;
    }
    return vm::numPtLevels;
}

WalkStart
PageWalkCache::lookup(mem::Addr va_page, ContextId ctx,
                      bool consume_pins)
{
    // rootOf() is the unregistered-context backstop: a walk of a
    // context nobody attached a page table for dies here rather than
    // dereferencing another tenant's tables.
    const mem::Addr root = rootOf(ctx);
    for (unsigned l = 2; l <= vm::numPtLevels; ++l) {
        const auto level = vm::PtLevel{l};
        Entry *e = cacheFor(level).find(
            vm::PageTable::regionBase(va_page, level), ctx);
        if (e) {
            ++hits_;
            e->lastUse = ++useClock_;
            if (consume_pins && e->counter > 0)
                --e->counter;
            return WalkStart{l - 1, e->nextTable};
        }
    }
    ++misses_;
    return WalkStart{vm::numPtLevels, root};
}

void
PageWalkCache::fill(mem::Addr va_page, vm::PtLevel level,
                    mem::Addr next_table, ContextId ctx)
{
    GPUWALK_ASSERT(level == vm::PtLevel::Pml4 || level == vm::PtLevel::Pdpt
                       || level == vm::PtLevel::Pd,
                   "PWC only caches the three upper levels");
    GPUWALK_ASSERT(contextRegistered(ctx),
                   "PWC fill for unregistered context ", ctx);
    LevelCache &cache = cacheFor(level);
    const mem::Addr region = vm::PageTable::regionBase(va_page, level);

    if (Entry *e = cache.find(region, ctx)) {
        e->nextTable = next_table;
        e->lastUse = ++useClock_;
        return;
    }

    auto &set = cache.sets[cache.setOf(region)];

    // Victim selection: LRU among unpinned entries first (the paper's
    // counter-guarded replacement); fall back to plain LRU when every
    // entry in the set is pinned.
    Entry *victim = nullptr;
    bool skipped_pinned = false;
    for (auto &e : set) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (cfg_.pinScoredEntries && e.counter > 0) {
            skipped_pinned = true;
            continue;
        }
        if (!victim || e.lastUse < victim->lastUse)
            victim = &e;
    }
    if (!victim) {
        // All valid and pinned: conventional pseudo-LRU.
        for (auto &e : set) {
            if (!victim || e.lastUse < victim->lastUse)
                victim = &e;
        }
    } else if (skipped_pinned) {
        ++pinnedSkips_;
    }

    ++fills_;
    victim->regionBase = region;
    victim->nextTable = next_table;
    victim->valid = true;
    victim->ctx = ctx;
    victim->lastUse = ++useClock_;
    victim->counter = 0;
}

std::optional<std::uint8_t>
PageWalkCache::peekCounter(mem::Addr va_page, vm::PtLevel level,
                           ContextId ctx) const
{
    GPUWALK_ASSERT(level == vm::PtLevel::Pml4 || level == vm::PtLevel::Pdpt
                       || level == vm::PtLevel::Pd,
                   "PWC only caches the three upper levels");
    const Entry *e = cacheFor(level).find(
        vm::PageTable::regionBase(va_page, level), ctx);
    if (!e)
        return std::nullopt;
    return e->counter;
}

void
PageWalkCache::invalidateAll()
{
    for (auto &c : caches_) {
        for (auto &set : c.sets) {
            for (auto &e : set) {
                e.valid = false;
                e.counter = 0;
            }
        }
    }
}

} // namespace gpuwalk::iommu
