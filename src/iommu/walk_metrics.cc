#include "iommu/walk_metrics.hh"

#include <algorithm>

namespace gpuwalk::iommu {

const std::vector<std::uint64_t> &
latencyBucketBounds()
{
    // Quasi-logarithmic, in ticks (500 = one 2 GHz GPU cycle): resolves
    // both near-hit walks and heavily queued tails in one histogram.
    static const std::vector<std::uint64_t> bounds{
        500,     1'000,     2'000,     5'000,     10'000,    20'000,
        50'000,  100'000,   200'000,   500'000,   1'000'000, 2'000'000,
        5'000'000};
    return bounds;
}

const std::vector<std::uint64_t> &
WalkMetricsSummary::workBucketBounds()
{
    static const std::vector<std::uint64_t> bounds{16, 32, 48, 64, 80,
                                                   256};
    return bounds;
}

WalkMetricsSummary
WalkMetrics::summarize() const
{
    WalkMetricsSummary s;
    const auto &bounds = WalkMetricsSummary::workBucketBounds();
    s.workBucketCounts.assign(bounds.size() + 1, 0);

    double first_latency_sum = 0.0;
    double last_latency_sum = 0.0;
    double gap_sum = 0.0;

    for (const auto &[instr, r] : records_) {
        (void)instr;
        if (r.walksCompleted == 0)
            continue;
        ++s.instructionsWithWalks;
        s.totalWalks += r.walksCompleted;
        s.totalMemAccesses += r.memAccesses;

        // Fig. 3: bucket the per-instruction memory-access "work".
        auto it = std::lower_bound(bounds.begin(), bounds.end(),
                                   r.memAccesses);
        ++s.workBucketCounts[static_cast<std::size_t>(
            it - bounds.begin())];

        if (r.walksCompleted < 2)
            continue;
        ++s.multiWalkInstructions;

        // Fig. 5: walks are interleaved if another instruction's walk
        // was dispatched between this instruction's first and last.
        const std::uint64_t span =
            r.lastDispatchSeq - r.firstDispatchSeq + 1;
        if (span > r.dispatches)
            ++s.interleavedInstructions;

        first_latency_sum +=
            static_cast<double>(r.firstCompletionLatency);
        last_latency_sum += static_cast<double>(r.lastCompletionLatency);
        gap_sum += static_cast<double>(r.lastCompletionTick
                                       - r.firstCompletionTick);
    }

    if (s.multiWalkInstructions > 0) {
        const double n = static_cast<double>(s.multiWalkInstructions);
        s.interleavedFraction =
            static_cast<double>(s.interleavedInstructions) / n;
        s.avgFirstCompletedLatency = first_latency_sum / n;
        s.avgLastCompletedLatency = last_latency_sum / n;
        s.avgLatencyGap = gap_sum / n;
    }

    if (s.instructionsWithWalks > 0) {
        s.workBucketFractions.assign(s.workBucketCounts.size(), 0.0);
        for (std::size_t i = 0; i < s.workBucketCounts.size(); ++i) {
            s.workBucketFractions[i] =
                static_cast<double>(s.workBucketCounts[i])
                / static_cast<double>(s.instructionsWithWalks);
        }
    }
    return s;
}

} // namespace gpuwalk::iommu
