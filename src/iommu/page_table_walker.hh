/**
 * @file
 * A hardware page table walker.
 *
 * Walks the in-memory x86-64 page table one level at a time: each
 * level is a dependent (sequential) memory read of the PTE word,
 * issued to the DRAM controller, followed by a functional decode of
 * the real entry bytes from the BackingStore. Upper-level entries are
 * installed into the PWCs as they are read. The IOMMU owns a pool of
 * these (8 in the baseline, 16 in the Fig. 13 sensitivity sweeps).
 */

#ifndef GPUWALK_IOMMU_PAGE_TABLE_WALKER_HH
#define GPUWALK_IOMMU_PAGE_TABLE_WALKER_HH

#include <array>
#include <cstdint>

#include "core/pending_walk.hh"
#include "iommu/page_walk_cache.hh"
#include "mem/backing_store.hh"
#include "mem/request.hh"
#include "sim/event_queue.hh"
#include "trace/trace.hh"

namespace gpuwalk::iommu {

/** Result of a finished walk, reported back to the IOMMU. */
struct WalkResult
{
    core::PendingWalk walk;
    mem::Addr paPage = 0;       ///< page-aligned translation result
    bool largePage = false;     ///< backed by a 2 MB (PS-bit) mapping
    unsigned memAccesses = 0;   ///< actual accesses performed (1-4)
    unsigned walkerId = 0;      ///< walker that performed the walk
    sim::Tick started = 0;      ///< dispatch time
    sim::Tick finished = 0;     ///< completion time

    /** The walk reached a non-present entry (far fault): paPage is
     *  meaningless and the walk must park until the fault is
     *  serviced. Only possible when the walker allowFaults(). */
    bool faulted = false;
    unsigned faultLevel = 0;    ///< non-present level (4..1)

    /** Memory latency of each level's PTE read; index = level - 1,
     *  0 for levels the walk skipped (PWC hit / 2 MB leaf). */
    std::array<sim::Tick, vm::numPtLevels> levelTicks{};
};

/** One independent walker; busy while a walk is in flight. */
class PageTableWalker
{
  public:
    /** Inline-stored completion callback (the IOMMU passes [this]). */
    using DoneCallback = sim::InlineFunction<void(WalkResult), 16>;

    /**
     * @param eq Event queue.
     * @param memory Where PTE reads are issued (the DRAM controller).
     * @param store Functional memory holding real PTE bytes.
     * @param pwc Shared page walk caches.
     * @param id This walker's index in the IOMMU pool (for tracing).
     */
    PageTableWalker(sim::EventQueue &eq, mem::MemoryDevice &memory,
                    mem::BackingStore &store, PageWalkCache &pwc,
                    unsigned id = 0)
        : eq_(eq), memory_(memory), store_(store), pwc_(pwc), id_(id)
    {}

    bool busy() const { return busy_; }

    /** Pool index of this walker. */
    unsigned id() const { return id_; }

    /** Attaches a lifecycle tracer (nullptr = tracing off). */
    void setTracer(trace::Tracer *tracer) { tracer_ = tracer; }

    /**
     * Demand paging: a non-present entry produces a faulted WalkResult
     * instead of being a fatal modeling error. Off by default — fully
     * resident runs treat a non-present entry as a bug.
     */
    void allowFaults(bool on) { faultsAllowed_ = on; }

    /** Total walks completed by this walker. */
    std::uint64_t walksDone() const { return walksDone_; }

    /**
     * Begins walking for @p walk. The PWC is consulted once here
     * (paper action 2-b), then 1-4 dependent memory reads follow.
     * @p on_done fires at completion with the result.
     * @pre !busy()
     */
    void start(core::PendingWalk walk, DoneCallback on_done);

  private:
    void step();
    void finish(mem::Addr pa_page, bool large_page);
    void fault();

    sim::EventQueue &eq_;
    mem::MemoryDevice &memory_;
    mem::BackingStore &store_;
    PageWalkCache &pwc_;
    unsigned id_ = 0;
    trace::Tracer *tracer_ = nullptr;
    bool faultsAllowed_ = false;

    bool busy_ = false;
    core::PendingWalk current_{};
    DoneCallback onDone_;
    unsigned level_ = 0;        ///< level about to be read (4..1)
    mem::Addr table_ = 0;       ///< physical base of that level's table
    unsigned accesses_ = 0;
    sim::Tick started_ = 0;
    std::array<sim::Tick, vm::numPtLevels> levelTicks_{};
    std::uint64_t walksDone_ = 0;
};

} // namespace gpuwalk::iommu

#endif // GPUWALK_IOMMU_PAGE_TABLE_WALKER_HH
