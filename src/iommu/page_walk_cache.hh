/**
 * @file
 * Page walk caches (PWCs).
 *
 * One small cache per upper page-table level (PML4, PDPT, PD), each
 * mapping the level's VA region base to the next-level table's
 * physical base. A hit at the PD level leaves one memory access for
 * the walk; a full miss costs four (paper §II-B).
 *
 * The paper augments PWC entries with 2-bit saturating counters: a
 * counter is incremented when an arrival-time scoring probe hits the
 * entry and decremented when a dispatched walk consumes the hit, and
 * replacement avoids victimizing entries with non-zero counters. That
 * keeps arrival-time score estimates honest by the time the request is
 * actually scheduled (§IV, "Design Subtleties").
 */

#ifndef GPUWALK_IOMMU_PAGE_WALK_CACHE_HH
#define GPUWALK_IOMMU_PAGE_WALK_CACHE_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "mem/types.hh"
#include "sim/stats.hh"
#include "vm/page_table.hh"

namespace gpuwalk::iommu {

/** Geometry and behaviour of the per-level walk caches. */
struct PwcConfig
{
    unsigned entriesPerLevel = 16;
    unsigned associativity = 4;

    /** Enables the paper's counter-based pinned replacement. */
    bool pinScoredEntries = true;
};

/** Where a walk may begin after consulting the PWCs. */
struct WalkStart
{
    /** First page-table level the walker must read (4 = from root). */
    unsigned level = vm::numPtLevels;

    /** Physical base of the table holding that level's entry. */
    mem::Addr tableBase = 0;

    /** Memory accesses the walk will perform: equals level. */
    unsigned accesses() const { return level; }
};

/** The three upper-level walk caches plus the scoring-probe logic. */
class PageWalkCache
{
  public:
    /**
     * @param cfg Geometry.
     * @param root Physical base of the PML4 (walks start here on a
     *        full miss).
     */
    PageWalkCache(const PwcConfig &cfg, mem::Addr root);

    /**
     * Arrival-time scoring probe (paper action 1-a): returns the
     * estimated number of memory accesses for a walk of @p va_page
     * (1-4) and increments the saturating counters of hit entries.
     * Does not touch LRU state.
     */
    unsigned probeEstimate(mem::Addr va_page);

    /**
     * Non-mutating estimate (for tests and non-scoring schedulers'
     * instrumentation): same value as probeEstimate, no counter or
     * LRU updates.
     */
    unsigned peekEstimate(mem::Addr va_page) const;

    /**
     * Walk-time lookup (action 2-b): finds the deepest hit, updates
     * LRU, and decrements counters along the hit path.
     * @return where the walk starts.
     */
    WalkStart lookup(mem::Addr va_page);

    /**
     * Installs the translation read at @p level: the entry for
     * @p va_page at that level points to @p next_table.
     * @pre level is Pml4, Pdpt, or Pd (leaf PTEs live in TLBs).
     */
    void fill(mem::Addr va_page, vm::PtLevel level, mem::Addr next_table);

    /** Drops all entries (counters included). */
    void invalidateAll();

    /**
     * Test accessor: current pin-counter value of the entry covering
     * @p va_page at @p level, or nullopt if no valid entry covers it.
     * No LRU/counter side effects.
     * @pre level is Pml4, Pdpt, or Pd.
     */
    std::optional<std::uint8_t>
    peekCounter(mem::Addr va_page, vm::PtLevel level) const;

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t pinnedSkips() const { return pinnedSkips_.value(); }

    sim::StatGroup &stats() { return statGroup_; }

  private:
    struct Entry
    {
        mem::Addr regionBase = 0; ///< VA base of the covered region
        mem::Addr nextTable = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
        std::uint8_t counter = 0; ///< 2-bit saturating pin counter
    };

    /** One per-level set-associative cache. */
    struct LevelCache
    {
        std::vector<std::vector<Entry>> sets;
        unsigned associativity = 0;

        Entry *find(mem::Addr region);
        const Entry *find(mem::Addr region) const;
        std::size_t setOf(mem::Addr region) const;
    };

    /** Index 0 -> PD (level 2), 1 -> PDPT (3), 2 -> PML4 (4). */
    static constexpr unsigned levelIndex(vm::PtLevel l)
    {
        return static_cast<unsigned>(l) - 2;
    }

    LevelCache &cacheFor(vm::PtLevel l) { return caches_[levelIndex(l)]; }
    const LevelCache &cacheFor(vm::PtLevel l) const
    {
        return caches_[levelIndex(l)];
    }

    PwcConfig cfg_;
    mem::Addr root_;
    std::array<LevelCache, 3> caches_;
    std::uint64_t useClock_ = 0;

    sim::StatGroup statGroup_;
    sim::Counter hits_{"hits", "walk-time PWC hits (deepest level)"};
    sim::Counter misses_{"misses", "walk-time PWC full misses"};
    sim::Counter fills_{"fills", "entries installed"};
    sim::Counter pinnedSkips_{
        "pinned_skips", "victims skipped due to non-zero counters"};
};

} // namespace gpuwalk::iommu

#endif // GPUWALK_IOMMU_PAGE_WALK_CACHE_HH
