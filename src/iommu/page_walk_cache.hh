/**
 * @file
 * Page walk caches (PWCs).
 *
 * One small cache per upper page-table level (PML4, PDPT, PD), each
 * mapping the level's VA region base to the next-level table's
 * physical base. A hit at the PD level leaves one memory access for
 * the walk; a full miss costs four (paper §II-B).
 *
 * The paper augments PWC entries with 2-bit saturating counters: a
 * counter is incremented when an arrival-time scoring probe hits the
 * entry and decremented when a dispatched walk consumes the hit, and
 * replacement avoids victimizing entries with non-zero counters. That
 * keeps arrival-time score estimates honest by the time the request is
 * actually scheduled (§IV, "Design Subtleties").
 */

#ifndef GPUWALK_IOMMU_PAGE_WALK_CACHE_HH
#define GPUWALK_IOMMU_PAGE_WALK_CACHE_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "mem/types.hh"
#include "sim/stats.hh"
#include "tlb/translation.hh"
#include "vm/page_table.hh"

namespace gpuwalk::iommu {

/** Address-space identifier; see tlb::ContextId. */
using ContextId = tlb::ContextId;

/** Geometry and behaviour of the per-level walk caches. */
struct PwcConfig
{
    unsigned entriesPerLevel = 16;
    unsigned associativity = 4;

    /** Enables the paper's counter-based pinned replacement. */
    bool pinScoredEntries = true;
};

/** Where a walk may begin after consulting the PWCs. */
struct WalkStart
{
    /** First page-table level the walker must read (4 = from root). */
    unsigned level = vm::numPtLevels;

    /** Physical base of the table holding that level's entry. */
    mem::Addr tableBase = 0;

    /** Memory accesses the walk will perform: equals level. */
    unsigned accesses() const { return level; }
};

/** The three upper-level walk caches plus the scoring-probe logic. */
class PageWalkCache
{
  public:
    /**
     * @param cfg Geometry.
     * @param root Physical base of the PML4 of the default context
     *        (ASID 0); walks of that context start here on a full
     *        miss. Further address spaces join via registerContext().
     */
    PageWalkCache(const PwcConfig &cfg, mem::Addr root);

    /**
     * Registers the page-table root of @p ctx. Every probe/lookup/fill
     * must name a registered context; an unregistered one is a fatal
     * modelling error (the hardware analogue is a DMA from a device
     * with no IOMMU domain attached).
     */
    void registerContext(ContextId ctx, mem::Addr root);

    /** Whether @p ctx has a registered page-table root. */
    bool contextRegistered(ContextId ctx) const;

    /** The registered walk root of @p ctx (fatal if unregistered). */
    mem::Addr rootOf(ContextId ctx) const;

    /**
     * Arrival-time scoring probe (paper action 1-a): returns the
     * estimated number of memory accesses for a walk of @p va_page
     * in @p ctx (1-4) and increments the saturating counters of hit
     * entries. Does not touch LRU state.
     */
    unsigned probeEstimate(mem::Addr va_page,
                           ContextId ctx = tlb::defaultContext);

    /**
     * Non-mutating estimate (for tests and non-scoring schedulers'
     * instrumentation): same value as probeEstimate, no counter or
     * LRU updates.
     */
    unsigned peekEstimate(mem::Addr va_page,
                          ContextId ctx = tlb::defaultContext) const;

    /**
     * Walk-time lookup (action 2-b): finds the deepest hit tagged with
     * @p ctx, updates LRU, and decrements counters along the hit path.
     * Pass @p consume_pins = false for walks that were never scored
     * (prefetches): their lookups must not drain pin counters that a
     * scoring probe incremented on behalf of a buffered demand walk.
     * @return where the walk starts (@p ctx's root on a full miss).
     */
    WalkStart lookup(mem::Addr va_page,
                     ContextId ctx = tlb::defaultContext,
                     bool consume_pins = true);

    /**
     * Installs the translation read at @p level for @p ctx: the entry
     * for @p va_page at that level points to @p next_table.
     * @pre level is Pml4, Pdpt, or Pd (leaf PTEs live in TLBs).
     */
    void fill(mem::Addr va_page, vm::PtLevel level, mem::Addr next_table,
              ContextId ctx = tlb::defaultContext);

    /** Drops all entries (counters included). */
    void invalidateAll();

    /**
     * Test accessor: current pin-counter value of the entry covering
     * @p va_page at @p level in @p ctx, or nullopt if no valid entry
     * covers it. No LRU/counter side effects.
     * @pre level is Pml4, Pdpt, or Pd.
     */
    std::optional<std::uint8_t>
    peekCounter(mem::Addr va_page, vm::PtLevel level,
                ContextId ctx = tlb::defaultContext) const;

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t pinnedSkips() const { return pinnedSkips_.value(); }

    sim::StatGroup &stats() { return statGroup_; }

  private:
    struct Entry
    {
        mem::Addr regionBase = 0; ///< VA base of the covered region
        mem::Addr nextTable = 0;
        bool valid = false;
        ContextId ctx = tlb::defaultContext; ///< owning address space
        std::uint64_t lastUse = 0;
        std::uint8_t counter = 0; ///< 2-bit saturating pin counter
    };

    /** One per-level set-associative cache. Entries are ASID-tagged:
     *  a region base never matches across contexts. */
    struct LevelCache
    {
        std::vector<std::vector<Entry>> sets;
        unsigned associativity = 0;

        Entry *find(mem::Addr region, ContextId ctx);
        const Entry *find(mem::Addr region, ContextId ctx) const;
        std::size_t setOf(mem::Addr region) const;
    };

    /** Index 0 -> PD (level 2), 1 -> PDPT (3), 2 -> PML4 (4). */
    static constexpr unsigned levelIndex(vm::PtLevel l)
    {
        return static_cast<unsigned>(l) - 2;
    }

    LevelCache &cacheFor(vm::PtLevel l) { return caches_[levelIndex(l)]; }
    const LevelCache &cacheFor(vm::PtLevel l) const
    {
        return caches_[levelIndex(l)];
    }

    PwcConfig cfg_;

    /** Registered per-context walk roots, indexed by ContextId (the
     *  system hands out small dense IDs). */
    std::vector<mem::Addr> roots_;
    std::vector<std::uint8_t> registered_;

    std::array<LevelCache, 3> caches_;
    std::uint64_t useClock_ = 0;

    sim::StatGroup statGroup_;
    sim::Counter hits_{"hits", "walk-time PWC hits (deepest level)"};
    sim::Counter misses_{"misses", "walk-time PWC full misses"};
    sim::Counter fills_{"fills", "entries installed"};
    sim::Counter pinnedSkips_{
        "pinned_skips", "victims skipped due to non-zero counters"};
};

} // namespace gpuwalk::iommu

#endif // GPUWALK_IOMMU_PAGE_WALK_CACHE_HH
