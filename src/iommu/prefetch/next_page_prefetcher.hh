/**
 * @file
 * The original idle-bandwidth next-page prefetcher (an extension
 * beyond the paper, in the spirit of its related-work TLB prefetchers
 * [44]), refactored onto the TranslationPrefetcher interface: after a
 * demand touch of page P, propose P+1 with full confidence.
 */

#ifndef GPUWALK_IOMMU_PREFETCH_NEXT_PAGE_PREFETCHER_HH
#define GPUWALK_IOMMU_PREFETCH_NEXT_PAGE_PREFETCHER_HH

#include "iommu/prefetch/translation_prefetcher.hh"

namespace gpuwalk::iommu {

/** Stateless sequential prediction: always P+1. */
class NextPagePrefetcher final : public TranslationPrefetcher
{
  public:
    const char *name() const override { return "next"; }

    void
    onDemandTouch(tlb::ContextId, std::uint32_t, mem::Addr va_page,
                  std::vector<PrefetchCandidate> &out,
                  bool = false) override
    {
        out.push_back({va_page + mem::pageSize, 1.0});
    }
};

} // namespace gpuwalk::iommu

#endif // GPUWALK_IOMMU_PREFETCH_NEXT_PAGE_PREFETCHER_HH
