#include "iommu/prefetch/translation_prefetcher.hh"

#include "iommu/prefetch/next_page_prefetcher.hh"
#include "iommu/prefetch/spp_prefetcher.hh"
#include "sim/logging.hh"

namespace gpuwalk::iommu {

const char *
toString(PrefetchKind kind)
{
    switch (kind) {
      case PrefetchKind::Off:
        return "off";
      case PrefetchKind::NextPage:
        return "next";
      case PrefetchKind::Spp:
        return "spp";
    }
    return "?";
}

PrefetchKind
prefetchKindFromString(const std::string &name)
{
    if (name == "off")
        return PrefetchKind::Off;
    if (name == "next" || name == "next-page")
        return PrefetchKind::NextPage;
    if (name == "spp")
        return PrefetchKind::Spp;
    sim::fatal("unknown prefetch policy '", name,
               "' (expected off, next or spp)");
}

std::unique_ptr<TranslationPrefetcher>
makePrefetcher(const PrefetchConfig &cfg)
{
    switch (cfg.kind) {
      case PrefetchKind::Off:
        return nullptr;
      case PrefetchKind::NextPage:
        return std::make_unique<NextPagePrefetcher>();
      case PrefetchKind::Spp:
        return std::make_unique<SppPrefetcher>(cfg);
    }
    return nullptr;
}

} // namespace gpuwalk::iommu
