/**
 * @file
 * Pluggable translation prefetching policies.
 *
 * A TranslationPrefetcher observes demand translation activity (walk
 * completions and consumed prefetch fills) and proposes pages whose
 * translations should be walked speculatively. The Iommu owns every
 * safety gate — idle-walker-only issue, IOMMU TLB probes, the
 * in-flight dedup filter, the GMMU residency + pin gate, and the
 * functional mapped-page check — so policies are pure prediction
 * logic and can never perturb demand traffic or raise a far fault.
 *
 * Two policies ship behind the interface: the original next-page
 * prefetcher (now PrefetchKind::NextPage) and an SPP-style
 * signature-path prefetcher (Kim et al., MICRO 2016) ported from
 * cache lines to translations: per-wavefront compressed page-delta
 * signatures index a pattern table of delta/confidence pairs, and a
 * lookahead pass chains predictions down the confidence product.
 */

#ifndef GPUWALK_IOMMU_PREFETCH_TRANSLATION_PREFETCHER_HH
#define GPUWALK_IOMMU_PREFETCH_TRANSLATION_PREFETCHER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/types.hh"
#include "tlb/translation.hh"

namespace gpuwalk::iommu {

/** The available translation prefetching policies. */
enum class PrefetchKind : std::uint8_t
{
    Off = 0,  ///< no speculative walks
    NextPage, ///< walk P+1 after a demand walk of P completes
    Spp,      ///< signature-path lookahead (per-wavefront deltas)
};

/** Printable name of @p kind ("off" / "next" / "spp"). */
const char *toString(PrefetchKind kind);

/** Parses a policy name; fatal() on unknown names. */
PrefetchKind prefetchKindFromString(const std::string &name);

/** Prefetcher selection and SPP tuning knobs. */
struct PrefetchConfig
{
    PrefetchKind kind = PrefetchKind::Off;

    /** Max candidates a single trigger may propose (lookahead depth
     *  for SPP; NextPage always proposes exactly one). */
    unsigned degree = 4;

    /** SPP: bits in the compressed delta-history signature. */
    unsigned sppSignatureBits = 12;

    /** SPP: signature shift per folded-in delta. */
    unsigned sppSignatureShift = 3;

    /** SPP: direct-mapped pattern-table entries. */
    unsigned sppPatternEntries = 512;

    /** SPP: delta slots tracked per pattern entry. */
    static constexpr unsigned sppDeltasPerEntry = 4;

    /** SPP: stop chaining when the path confidence product drops
     *  below this. */
    double sppConfidenceThreshold = 0.25;

    /** SPP: |page delta| clamp — larger jumps reset the stream
     *  instead of polluting the pattern table. */
    std::int64_t sppMaxDelta = 256;
};

/** One proposed speculative walk. */
struct PrefetchCandidate
{
    mem::Addr vaPage = 0;

    /** Path confidence in [0, 1]; NextPage reports 1. */
    double confidence = 1.0;
};

/** Per-run prefetcher accounting for RunStats / report JSON. */
struct PrefetchSummary
{
    bool enabled = false;
    std::string policy;          ///< toString(kind)
    std::uint64_t issued = 0;    ///< speculative walks started
    std::uint64_t completed = 0; ///< speculative walks that filled TLBs
    std::uint64_t useful = 0;    ///< demand TLB hits on prefetched pages
    std::uint64_t evictedUnused = 0; ///< demand re-walked a prefetched page
    std::uint64_t unusedAtEnd = 0;   ///< filled but never demanded

    double accuracy = 0.0;  ///< useful / completed
    double coverage = 0.0;  ///< useful / (useful + demand walks)
    double pollution = 0.0; ///< evictedUnused / completed
};

/** A prediction policy; the Iommu gates and issues the candidates. */
class TranslationPrefetcher
{
  public:
    virtual ~TranslationPrefetcher() = default;

    /** Policy name (matches toString(kind)). */
    virtual const char *name() const = 0;

    /**
     * Observes one demand touch of @p va_page — a demand walk
     * completion, or a demand TLB hit that consumed a prefetched
     * entry (so a correctly predicted stream keeps training even
     * when prefetching removes its walks) — and appends prefetch
     * candidates to @p out in priority order. Must be deterministic.
     *
     * @p leader marks touches from Wasp leader wavefronts. Leaders run
     * ahead of the follower pack over the same data, so their streams
     * are the freshest training signal a policy can get; stateful
     * policies may surface per-class accounting but must stay
     * deterministic either way. False whenever Wasp is off.
     */
    virtual void onDemandTouch(tlb::ContextId ctx,
                               std::uint32_t wavefront,
                               mem::Addr va_page,
                               std::vector<PrefetchCandidate> &out,
                               bool leader = false) = 0;
};

/** Creates the configured policy; nullptr for PrefetchKind::Off. */
std::unique_ptr<TranslationPrefetcher>
makePrefetcher(const PrefetchConfig &cfg);

} // namespace gpuwalk::iommu

#endif // GPUWALK_IOMMU_PREFETCH_TRANSLATION_PREFETCHER_HH
