#include "iommu/prefetch/spp_prefetcher.hh"

#include "sim/logging.hh"

namespace gpuwalk::iommu {

namespace {

/** Folds a signed page delta into the unsigned signature domain:
 *  magnitude shifted left, sign in bit 0 (so +d and -d differ). */
std::uint32_t
foldDelta(std::int64_t delta)
{
    const std::uint64_t mag =
        static_cast<std::uint64_t>(delta < 0 ? -delta : delta);
    return static_cast<std::uint32_t>((mag << 1)
                                      | (delta < 0 ? 1u : 0u));
}

} // namespace

SppPrefetcher::SppPrefetcher(const PrefetchConfig &cfg) : cfg_(cfg)
{
    GPUWALK_ASSERT(cfg_.sppSignatureBits >= 4
                       && cfg_.sppSignatureBits <= 24,
                   "SPP signature width out of range");
    GPUWALK_ASSERT(cfg_.sppPatternEntries > 0,
                   "SPP pattern table needs entries");
    GPUWALK_ASSERT(cfg_.sppMaxDelta > 0, "SPP delta clamp must be > 0");
    sigMask_ = (1u << cfg_.sppSignatureBits) - 1;
    patterns_.resize(cfg_.sppPatternEntries);
}

std::uint32_t
SppPrefetcher::nextSignature(std::uint32_t sig, std::int64_t delta) const
{
    return ((sig << cfg_.sppSignatureShift) ^ foldDelta(delta))
           & sigMask_;
}

SppPrefetcher::PatternEntry &
SppPrefetcher::entryFor(std::uint32_t sig)
{
    return patterns_[sig % patterns_.size()];
}

void
SppPrefetcher::train(std::uint32_t sig, std::int64_t delta)
{
    PatternEntry &e = entryFor(sig);
    if (!e.valid || e.tag != sig) {
        // Direct-mapped replacement: a new signature takes the set.
        e = PatternEntry{};
        e.tag = sig;
        e.valid = true;
    }

    ++trainedDeltas_;
    DeltaSlot *slot = nullptr;
    DeltaSlot *weakest = &e.slots[0];
    for (auto &s : e.slots) {
        if (s.count > 0 && s.delta == delta) {
            slot = &s;
            break;
        }
        if (s.count < weakest->count)
            weakest = &s;
    }
    if (!slot) {
        // Replace the weakest learned delta (empty slots have count 0).
        weakest->delta = delta;
        weakest->count = 0;
        slot = weakest;
    }
    ++slot->count;
    ++e.total;

    // Keep confidence adaptive: halve everything when the per-entry
    // total saturates, so stale deltas decay instead of pinning the
    // prediction forever.
    if (e.total >= 256) {
        std::uint32_t remaining = 0;
        for (auto &s : e.slots) {
            s.count /= 2;
            remaining += s.count;
        }
        e.total = remaining > 0 ? remaining : 1;
    }
}

void
SppPrefetcher::lookahead(std::uint32_t sig, std::uint64_t page_no,
                         std::vector<PrefetchCandidate> &out) const
{
    double path_confidence = 1.0;
    std::int64_t current = static_cast<std::int64_t>(page_no);
    std::uint32_t s = sig;

    for (unsigned depth = 0; depth < cfg_.degree; ++depth) {
        const PatternEntry &e = patterns_[s % patterns_.size()];
        if (!e.valid || e.tag != s || e.total == 0)
            return;

        // Highest-confidence delta; ties break to the lowest slot.
        const DeltaSlot *best = nullptr;
        for (const auto &slot : e.slots) {
            if (slot.count == 0)
                continue;
            if (!best || slot.count > best->count)
                best = &slot;
        }
        if (!best)
            return;

        path_confidence *=
            static_cast<double>(best->count) / e.total;
        if (path_confidence < cfg_.sppConfidenceThreshold)
            return;

        current += best->delta;
        if (current <= 0)
            return;
        out.push_back({static_cast<mem::Addr>(current)
                           << mem::pageShift,
                       path_confidence});
        s = nextSignature(s, best->delta);
    }
}

void
SppPrefetcher::onDemandTouch(tlb::ContextId ctx, std::uint32_t wavefront,
                             mem::Addr va_page,
                             std::vector<PrefetchCandidate> &out,
                             bool leader)
{
    const std::uint64_t stream_key =
        (static_cast<std::uint64_t>(ctx) << 32) | wavefront;
    const std::uint64_t page_no = va_page >> mem::pageShift;

    auto [it, fresh] = streams_.try_emplace(stream_key);
    Stream &st = it->second;
    if (fresh) {
        st.lastPageNo = page_no;
        st.signature = 0;
        return;
    }

    const std::int64_t delta = static_cast<std::int64_t>(page_no)
                               - static_cast<std::int64_t>(st.lastPageNo);
    if (delta == 0)
        return; // same-page retouch carries no stride information
    if (delta > cfg_.sppMaxDelta || delta < -cfg_.sppMaxDelta) {
        // A wild jump starts a new access phase: restart the stream
        // rather than folding noise into the pattern table.
        ++streamResets_;
        st.lastPageNo = page_no;
        st.signature = 0;
        return;
    }

    train(st.signature, delta);
    if (leader)
        ++leaderTrainedDeltas_;
    st.signature = nextSignature(st.signature, delta);
    st.lastPageNo = page_no;
    lookahead(st.signature, page_no, out);
}

} // namespace gpuwalk::iommu
