/**
 * @file
 * SPP-style signature-path translation prefetcher.
 *
 * The Signature Path Prefetcher (Kim et al., MICRO 2016) learns
 * compressed delta-history signatures and chains predictions down a
 * confidence product. This port swaps cache lines for translation
 * pages and memory-access streams for per-wavefront page streams:
 *
 *  - Signature table: one entry per (ctx, wavefront) stream holding
 *    the stream's last touched page and its compressed signature
 *    sig' = ((sig << shift) ^ fold(delta)) & mask.
 *  - Pattern table: direct-mapped, signature-tagged; each entry
 *    tracks up to four distinct page deltas with saturating counters
 *    against a per-entry total, so counter / total is the per-step
 *    confidence of a delta given the signature.
 *  - Lookahead: from the current signature, repeatedly take the
 *    highest-confidence delta, multiply it into the path confidence,
 *    and propose the resulting page — speculatively advancing the
 *    signature as if the prediction were a real touch — until the
 *    product drops below the threshold or the configured degree is
 *    reached.
 *
 * Deterministic by construction: fixed-seedless integer state, ties
 * in the pattern table break toward the lowest slot index.
 */

#ifndef GPUWALK_IOMMU_PREFETCH_SPP_PREFETCHER_HH
#define GPUWALK_IOMMU_PREFETCH_SPP_PREFETCHER_HH

#include <array>

#include "iommu/prefetch/translation_prefetcher.hh"
#include "sim/flat_map.hh"

namespace gpuwalk::iommu {

/** Per-wavefront signature-path prediction. */
class SppPrefetcher final : public TranslationPrefetcher
{
  public:
    explicit SppPrefetcher(const PrefetchConfig &cfg);

    const char *name() const override { return "spp"; }

    void onDemandTouch(tlb::ContextId ctx, std::uint32_t wavefront,
                       mem::Addr va_page,
                       std::vector<PrefetchCandidate> &out,
                       bool leader = false) override;

    /** Test accessors. */
    std::uint64_t trainedDeltas() const { return trainedDeltas_; }
    std::uint64_t streamResets() const { return streamResets_; }

    /**
     * Deltas trained by Wasp leader streams. Leaders and followers
     * share the signature-indexed pattern table, so every leader-
     * trained delta is immediately visible to follower lookahead —
     * this counter makes that transfer observable in tests/stats.
     */
    std::uint64_t leaderTrainedDeltas() const
    {
        return leaderTrainedDeltas_;
    }

  private:
    /** One (ctx, wavefront) stream. */
    struct Stream
    {
        std::uint64_t lastPageNo = 0;
        std::uint32_t signature = 0;
    };

    /** One learned delta under a signature. */
    struct DeltaSlot
    {
        std::int64_t delta = 0;
        std::uint32_t count = 0;
    };

    /** Direct-mapped, signature-tagged pattern entry. */
    struct PatternEntry
    {
        std::uint32_t tag = 0;
        bool valid = false;
        std::uint32_t total = 0;
        std::array<DeltaSlot, PrefetchConfig::sppDeltasPerEntry> slots;
    };

    std::uint32_t nextSignature(std::uint32_t sig,
                                std::int64_t delta) const;
    PatternEntry &entryFor(std::uint32_t sig);
    void train(std::uint32_t sig, std::int64_t delta);
    void lookahead(std::uint32_t sig, std::uint64_t page_no,
                   std::vector<PrefetchCandidate> &out) const;

    PrefetchConfig cfg_;
    std::uint32_t sigMask_ = 0;

    /** Stream table keyed by ctx << 32 | wavefront. */
    sim::FlatMap<std::uint64_t, Stream> streams_;
    std::vector<PatternEntry> patterns_;

    std::uint64_t trainedDeltas_ = 0;
    std::uint64_t streamResets_ = 0;
    std::uint64_t leaderTrainedDeltas_ = 0;
};

} // namespace gpuwalk::iommu

#endif // GPUWALK_IOMMU_PREFETCH_SPP_PREFETCHER_HH
