/**
 * @file
 * Chrome trace_event JSON export.
 *
 * Renders a Tracer's retained events in the Trace Event Format that
 * chrome://tracing and Perfetto load directly: queue waits as async
 * ("b"/"e") spans, walker service and per-level PTE fetches as
 * complete ("X") spans on one timeline row per walker, and the
 * TLB/scoring events as instants. Timestamps are raw simulator ticks
 * (500 ticks = 1 GPU cycle at 2 GHz).
 */

#ifndef GPUWALK_TRACE_CHROME_EXPORT_HH
#define GPUWALK_TRACE_CHROME_EXPORT_HH

#include <iosfwd>
#include <string>

#include "trace/trace.hh"

namespace gpuwalk::trace {

/** Writes @p tracer's retained events as Chrome trace JSON. */
void writeChromeTrace(std::ostream &os, const Tracer &tracer);

/** writeChromeTrace to @p path; fatal() if it cannot be opened. */
void writeChromeTraceFile(const std::string &path,
                          const Tracer &tracer);

} // namespace gpuwalk::trace

#endif // GPUWALK_TRACE_CHROME_EXPORT_HH
