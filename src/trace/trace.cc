#include "trace/trace.hh"

#include <algorithm>
#include <tuple>

namespace gpuwalk::trace {

Tracer
mergeTracers(const std::vector<const Tracer *> &parts,
             const TraceConfig &cfg)
{
    struct Entry
    {
        OrderStamp stamp;
        Event event;
        std::size_t part;
    };
    std::vector<Entry> entries;
    std::size_t total = 0;
    for (const Tracer *t : parts)
        total += t->size();
    entries.reserve(total);
    for (std::size_t p = 0; p < parts.size(); ++p) {
        parts[p]->forEachStamped(
            [&entries, p](const OrderStamp &s, const Event &ev) {
                entries.push_back(Entry{s, ev, p});
            });
    }
    // Serial ticks execute breadth-first: queued events in key order,
    // then same-tick spawns in (parent execution, allocation) order —
    // which is what (gen, spawnKey, spawnIdx) restores; the key alone
    // ties cross-domain for spawns. Roots carry spawnKey == key and
    // gen == 0, so for them this is plain key order. stable_sort keeps
    // each part's own recording order for identical stamps (records
    // from the same executing event share idx only when recorded
    // before any event ran).
    std::stable_sort(
        entries.begin(), entries.end(),
        [](const Entry &a, const Entry &b) {
            return std::tie(a.stamp.when, a.stamp.prio, a.stamp.gen,
                            a.stamp.spawnKey, a.stamp.spawnIdx,
                            a.stamp.key, a.stamp.idx, a.part)
                   < std::tie(b.stamp.when, b.stamp.prio, b.stamp.gen,
                              b.stamp.spawnKey, b.stamp.spawnIdx,
                              b.stamp.key, b.stamp.idx, b.part);
        });
    Tracer merged(cfg);
    for (const Entry &e : entries)
        merged.record(e.event);
    return merged;
}

const char *
toString(EventKind kind)
{
    switch (kind) {
    case EventKind::Coalesced: return "coalesced";
    case EventKind::Enqueued: return "enqueued";
    case EventKind::Scored: return "scored";
    case EventKind::Scheduled: return "scheduled";
    case EventKind::MemIssued: return "mem_issued";
    case EventKind::MemCompleted: return "mem_completed";
    case EventKind::WalkDone: return "walk_done";
    case EventKind::FaultRaised: return "fault_raised";
    case EventKind::FaultServiced: return "fault_serviced";
    case EventKind::PrefetchIssued: return "prefetch_issued";
    case EventKind::PrefetchUseful: return "prefetch_useful";
    case EventKind::LeaderIssued: return "leader_issued";
    case EventKind::SpecAdmitted: return "spec_admitted";
    }
    return "unknown";
}

} // namespace gpuwalk::trace
