#include "trace/trace.hh"

namespace gpuwalk::trace {

const char *
toString(EventKind kind)
{
    switch (kind) {
    case EventKind::Coalesced: return "coalesced";
    case EventKind::Enqueued: return "enqueued";
    case EventKind::Scored: return "scored";
    case EventKind::Scheduled: return "scheduled";
    case EventKind::MemIssued: return "mem_issued";
    case EventKind::MemCompleted: return "mem_completed";
    case EventKind::WalkDone: return "walk_done";
    }
    return "unknown";
}

} // namespace gpuwalk::trace
