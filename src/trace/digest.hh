/**
 * @file
 * Deterministic trace digests for golden-trace testing.
 *
 * A digest is an FNV-1a hash over the canonical field encoding of
 * every retained event (plus the recorded/dropped totals, so a ring
 * overflow cannot silently alias two different runs). Two runs of the
 * same configuration and seed produce the same event stream, hence the
 * same digest — at any --jobs count, since every run owns its System.
 */

#ifndef GPUWALK_TRACE_DIGEST_HH
#define GPUWALK_TRACE_DIGEST_HH

#include <cstdint>
#include <string>

#include "trace/trace.hh"

namespace gpuwalk::trace {

/** Incremental FNV-1a (64-bit) hasher. */
class Fnv1a
{
  public:
    /** Folds @p v in as 8 little-endian bytes. */
    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            hash_ ^= (v >> (8 * i)) & 0xff;
            hash_ *= 0x100000001b3ull;
        }
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

/** Digest of one event, folded into @p h. */
void digestEvent(Fnv1a &h, const Event &ev);

/** Digest of @p tracer's retained events and totals. */
std::uint64_t digest(const Tracer &tracer);

/** @p value as a 16-digit lowercase hex string. */
std::string digestHex(std::uint64_t value);

} // namespace gpuwalk::trace

#endif // GPUWALK_TRACE_DIGEST_HH
