/**
 * @file
 * Walk-lifecycle event tracing.
 *
 * Records each page walk's lifecycle as timestamped events — coalesced
 * at the GPU TLB, enqueued at the IOMMU, scored (PWC probe result and
 * estimated job length), scheduled onto a walker, each per-level PTE
 * fetch issued/completed, and walk completion — keyed by
 * (instruction ID, wavefront, VA page). The paper's headline claims
 * are all *ordering* claims; this subsystem is what lets a test assert
 * them directly instead of inferring them from end-of-run aggregates.
 *
 * Zero overhead when disabled: components hold a `Tracer *` that is
 * nullptr unless tracing was requested, so every instrumentation site
 * costs one predictable branch. When enabled, events land in a
 * bounded in-memory ring buffer (oldest dropped first); sinks —
 * the Chrome trace_event exporter (chrome_export.hh) and the FNV-1a
 * golden-trace digest (digest.hh) — consume the retained window.
 */

#ifndef GPUWALK_TRACE_TRACE_HH
#define GPUWALK_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/types.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace gpuwalk::trace {

/** Lifecycle stages of one page walk, in span-nesting order. */
enum class EventKind : std::uint8_t
{
    /** Translation request entered the GPU TLB hierarchy (the
     *  coalescer's product; most of these hit a TLB and never walk). */
    Coalesced = 0,

    /** Request missed every TLB and entered the IOMMU walk path.
     *  arg0 = walk-buffer depth at arrival. */
    Enqueued,

    /** Arrival-time scoring probe (paper action 1-a/1-b).
     *  arg0 = this walk's PWC estimate (1-4), arg1 = the instruction's
     *  accumulated job-length score after folding it in. */
    Scored,

    /** Dispatched onto a walker. walker = walker index, arg0 = the
     *  core::PickReason that selected it, arg1 = queue wait (ticks). */
    Scheduled,

    /** One per-level PTE fetch issued. level = PT level (4..1),
     *  arg0 = physical PTE slot address. */
    MemIssued,

    /** That fetch completed. level = PT level, arg0 = latency
     *  (ticks). */
    MemCompleted,

    /** Walk finished. walker = walker index, arg0 = memory accesses
     *  performed (1-4), arg1 = walker service time (ticks). */
    WalkDone,

    // Demand-paging kinds are appended so the numeric values above —
    // and with them the committed golden trace digests of fully
    // resident runs — stay stable.

    /** A walk reached a non-present entry and raised a far fault.
     *  level = the non-present PT level (4..1), walker = the walker
     *  that hit it, arg0 = walks parked behind the fault so far. */
    FaultRaised,

    /** The GMMU repaired the fault; parked walks re-enter scheduling.
     *  arg0 = walks released, arg1 = raise-to-service latency
     *  (ticks). */
    FaultServiced,

    // Prefetch kinds are likewise appended: the values above appear in
    // every committed golden digest and must not shift.

    /** A speculative translation walk was issued into an idle walker.
     *  walker = walker index, vaPage = predicted page, arg0 = path
     *  confidence in per-mille, arg1 = the triggering demand page. */
    PrefetchIssued,

    /** A demand request hit an IOMMU TLB entry filled by a prefetch
     *  (first touch only). instruction/wavefront = the demand
     *  request's. */
    PrefetchUseful,

    // Wasp kinds are appended under the same discipline: every value
    // above appears in committed golden digests and must not shift.

    /** A Wasp leader slot issued a memory instruction. ctx/wavefront
     *  identify the leader, instruction = the instruction ID it will
     *  carry, arg0 = CU index, arg1 = coalesced pages touched. */
    LeaderIssued,

    /** A speculative walk (leader-originated or prefetcher-predicted)
     *  was admitted into the walk buffer's speculative class instead
     *  of the demand path. vaPage = target page, arg0 = admission
     *  policy (SpecAdmission value), arg1 = speculative entries
     *  resident after admission. */
    SpecAdmitted,
};

/** Number of distinct EventKind values. */
constexpr unsigned numEventKinds = 13;

/** Short lowercase name of @p kind (e.g. "scheduled"). */
const char *toString(EventKind kind);

/** Sentinel walker index for events not tied to a walker. */
constexpr std::uint32_t noWalker = ~std::uint32_t(0);

/** One timestamped lifecycle event. */
struct Event
{
    sim::Tick tick = 0;
    EventKind kind = EventKind::Coalesced;
    std::uint8_t level = 0;            ///< PT level for Mem* events
    std::uint16_t ctx = 0;             ///< tlb::ContextId (ASID)
    std::uint32_t walker = noWalker;   ///< walker index where relevant
    std::uint32_t wavefront = 0;
    std::uint64_t instruction = 0;     ///< tlb::InstructionId
    mem::Addr vaPage = 0;
    std::uint64_t arg0 = 0;            ///< kind-specific payload
    std::uint64_t arg1 = 0;            ///< kind-specific payload
};

/** Tracing knobs. Lives in SystemConfig; does not perturb simulated
 *  behaviour, so it is deliberately excluded from the config banner
 *  (and hence from config fingerprints). */
struct TraceConfig
{
    /** Master switch; off = the tracer is never constructed. */
    bool enabled = false;

    /** Events retained in the ring buffer (bounded memory). */
    std::size_t ringCapacity = 1u << 20;

    /**
     * Chrome trace_event JSON output path ("" = no export). Single-run
     * front ends write exactly this path; the sweep runner derives one
     * uniquified file per run from it (see exp::runOne).
     */
    std::string outPath;
};

/**
 * Global ordering position of one recorded event in a
 * domain-partitioned run: the executing event's (tick, priority,
 * composite order key, spawn lineage) as reported by the owning
 * queue's cursor, plus the record's index within that event.
 *
 * A serial run executes a tick breadth-first: every event already
 * queued for the tick runs before any same-tick child scheduled
 * during the tick, and children run in the order their parents
 * executed. The lineage fields (spawn generation, parent key,
 * allocation index within the parent) encode that append order, so
 * sorting per-domain records by (when, prio, gen, spawnKey, spawnIdx,
 * key, idx) reconstructs the one global order a serial run would have
 * recorded them in — the key alone would tie cross-domain when two
 * domains both allocate their first key at the same tick.
 */
struct OrderStamp
{
    sim::Tick when = 0;
    std::uint64_t key = 0;
    std::uint64_t spawnKey = 0;
    std::uint32_t spawnIdx = 0;
    std::uint32_t idx = 0;
    std::uint16_t gen = 0;
    std::int8_t prio = 0;
};

/**
 * The bounded in-memory event sink. Not thread-safe by design: one
 * Tracer belongs to one *domain* — a serial System has exactly one, a
 * domain-partitioned System gives each recording domain its own and
 * merges them deterministically after the run (mergeTracers).
 */
class Tracer
{
  public:
    explicit Tracer(const TraceConfig &cfg = {})
        : capacity_(cfg.ringCapacity), ring_(capacity_)
    {
        GPUWALK_ASSERT(capacity_ > 0, "tracer ring needs capacity");
    }

    /**
     * Stamps every subsequent record with @p eq's execution cursor
     * (domain-key mode), so per-domain rings can merge into the global
     * order. nullptr (the default) disables stamping.
     */
    void
    setOrderSource(const sim::EventQueue *eq)
    {
        orderSource_ = eq;
        if (eq)
            stamps_.resize(capacity_);
    }

    /** Appends @p ev; silently drops the oldest event when full. */
    void
    record(const Event &ev)
    {
        if (orderSource_) {
            const sim::EventQueue::ExecCursor &cur = orderSource_->cursor();
            if (cur.serial != lastSerial_) {
                lastSerial_ = cur.serial;
                nextIdx_ = 0;
            }
            stamps_[head_] = OrderStamp{
                cur.when,        cur.seq,  cur.lineage.spawnKey,
                cur.lineage.spawnIdx, nextIdx_++, cur.lineage.gen,
                cur.prio};
        }
        ring_[head_] = ev;
        head_ = (head_ + 1) % capacity_;
        ++recorded_;
    }

    /** Events currently retained. */
    std::size_t
    size() const
    {
        return recorded_ < capacity_ ? static_cast<std::size_t>(recorded_)
                                     : capacity_;
    }

    std::size_t capacity() const { return capacity_; }

    /** Events ever recorded (including since-dropped ones). */
    std::uint64_t recorded() const { return recorded_; }

    /** Events dropped because the ring was full. */
    std::uint64_t
    dropped() const
    {
        return recorded_ < capacity_ ? 0 : recorded_ - capacity_;
    }

    /** Applies @p fn to every retained event, oldest first. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        const std::size_t n = size();
        // Oldest retained event: head_ when the ring has wrapped.
        const std::size_t start =
            recorded_ < capacity_ ? 0 : head_;
        for (std::size_t i = 0; i < n; ++i)
            fn(ring_[(start + i) % capacity_]);
    }

    /** Retained events, oldest first (convenience for tests). */
    std::vector<Event>
    snapshot() const
    {
        std::vector<Event> out;
        out.reserve(size());
        forEach([&out](const Event &ev) { out.push_back(ev); });
        return out;
    }

    /** Applies @p fn(stamp, event) to every retained event, oldest
     *  first. Requires an order source. */
    template <typename Fn>
    void
    forEachStamped(Fn &&fn) const
    {
        GPUWALK_ASSERT(orderSource_, "tracer has no order source");
        const std::size_t n = size();
        const std::size_t start = recorded_ < capacity_ ? 0 : head_;
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t slot = (start + i) % capacity_;
            fn(stamps_[slot], ring_[slot]);
        }
    }

    /** Drops all retained events and counters. */
    void
    clear()
    {
        head_ = 0;
        recorded_ = 0;
        lastSerial_ = 0;
        nextIdx_ = 0;
    }

  private:
    std::size_t capacity_;
    std::vector<Event> ring_;
    std::size_t head_ = 0;       ///< next write slot
    std::uint64_t recorded_ = 0;

    // Order-stamp mode (domain-partitioned runs).
    const sim::EventQueue *orderSource_ = nullptr;
    std::vector<OrderStamp> stamps_;   ///< parallel to ring_
    std::uint64_t lastSerial_ = 0;     ///< resets idx per executed event
    std::uint32_t nextIdx_ = 0;
};

/**
 * Merges per-domain stamped tracers into one tracer holding the
 * global record order — (when, prio, key, idx), ties broken by the
 * position in @p parts. When no part overflowed its ring, the merged
 * tracer replays exactly the sequence a serial run records, so its
 * digest (trace/digest.hh) matches the serial digest bit for bit.
 */
Tracer mergeTracers(const std::vector<const Tracer *> &parts,
                    const TraceConfig &cfg);

} // namespace gpuwalk::trace

#endif // GPUWALK_TRACE_TRACE_HH
