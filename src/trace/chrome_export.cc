#include "trace/chrome_export.hh"

#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <utility>

#include "sim/logging.hh"

namespace gpuwalk::trace {

namespace {

/** Thread-row layout inside the single "gpuwalk" process. */
constexpr unsigned tidTlb = 0;     ///< GPU TLB instants
constexpr unsigned tidBuffer = 1;  ///< IOMMU buffer (queue spans)
constexpr unsigned tidWalkerBase = 100;

/** Streams one trace event object, managing the leading comma. */
class EventWriter
{
  public:
    explicit EventWriter(std::ostream &os) : os_(os) {}

    std::ostream &
    next()
    {
        os_ << (first_ ? "\n" : ",\n");
        first_ = false;
        return os_;
    }

  private:
    std::ostream &os_;
    bool first_ = true;
};

void
writeMeta(EventWriter &w, unsigned tid, const std::string &name)
{
    w.next() << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
             << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
             << name << "\"}}";
}

void
writeCommonArgs(std::ostream &os, const Event &ev)
{
    os << "\"instruction\":" << ev.instruction << ",\"wavefront\":"
       << ev.wavefront << ",\"va_page\":" << ev.vaPage;
}

} // namespace

void
writeChromeTrace(std::ostream &os, const Tracer &tracer)
{
    os << "{\"displayTimeUnit\":\"ns\",\"otherData\":{"
       << "\"tick_note\":\"ts/dur are simulator ticks; "
       << "500 ticks = 1 GPU cycle\",\"events_recorded\":"
       << tracer.recorded() << ",\"events_dropped\":"
       << tracer.dropped() << "},\"traceEvents\":[";

    EventWriter w(os);
    w.next() << "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\","
             << "\"args\":{\"name\":\"gpuwalk\"}}";
    writeMeta(w, tidTlb, "gpu_tlb");
    writeMeta(w, tidBuffer, "iommu_buffer");

    // Async-span ids for queue waits: assigned at Enqueued, matched at
    // Scheduled. Keyed by (instruction, vaPage) — unique per in-flight
    // walk (the coalescer and TLB-MSHR merging guarantee one walk per
    // instruction/page pair at a time).
    std::map<std::pair<std::uint64_t, mem::Addr>, std::uint64_t>
        queueIds;
    std::uint64_t nextId = 1;
    std::set<std::uint32_t> walkersSeen;

    tracer.forEach([&](const Event &ev) {
        const auto key = std::make_pair(ev.instruction, ev.vaPage);
        switch (ev.kind) {
        case EventKind::Coalesced:
            w.next() << "{\"ph\":\"i\",\"pid\":0,\"tid\":" << tidTlb
                     << ",\"ts\":" << ev.tick
                     << ",\"name\":\"coalesce\",\"s\":\"t\","
                     << "\"args\":{";
            writeCommonArgs(os, ev);
            os << "}}";
            break;
        case EventKind::Enqueued: {
            const std::uint64_t id = nextId++;
            queueIds[key] = id;
            w.next() << "{\"ph\":\"b\",\"pid\":0,\"tid\":" << tidBuffer
                     << ",\"ts\":" << ev.tick
                     << ",\"cat\":\"queue\",\"id\":" << id
                     << ",\"name\":\"queued\",\"args\":{";
            writeCommonArgs(os, ev);
            os << ",\"buffer_depth\":" << ev.arg0 << "}}";
            break;
        }
        case EventKind::Scored:
            w.next() << "{\"ph\":\"i\",\"pid\":0,\"tid\":" << tidBuffer
                     << ",\"ts\":" << ev.tick
                     << ",\"name\":\"score\",\"s\":\"t\",\"args\":{";
            writeCommonArgs(os, ev);
            os << ",\"estimate\":" << ev.arg0 << ",\"score\":"
               << ev.arg1 << "}}";
            break;
        case EventKind::Scheduled: {
            const auto it = queueIds.find(key);
            if (it != queueIds.end()) {
                w.next() << "{\"ph\":\"e\",\"pid\":0,\"tid\":"
                         << tidBuffer << ",\"ts\":" << ev.tick
                         << ",\"cat\":\"queue\",\"id\":" << it->second
                         << ",\"name\":\"queued\"}";
                queueIds.erase(it);
            }
            break;
        }
        case EventKind::MemIssued:
            break; // the MemCompleted event carries the full span
        case EventKind::MemCompleted:
            walkersSeen.insert(ev.walker);
            w.next() << "{\"ph\":\"X\",\"pid\":0,\"tid\":"
                     << tidWalkerBase + ev.walker << ",\"ts\":"
                     << ev.tick - ev.arg0 << ",\"dur\":" << ev.arg0
                     << ",\"name\":\"L" << unsigned(ev.level)
                     << "\",\"args\":{";
            writeCommonArgs(os, ev);
            os << "}}";
            break;
        case EventKind::WalkDone:
            walkersSeen.insert(ev.walker);
            w.next() << "{\"ph\":\"X\",\"pid\":0,\"tid\":"
                     << tidWalkerBase + ev.walker << ",\"ts\":"
                     << ev.tick - ev.arg1 << ",\"dur\":" << ev.arg1
                     << ",\"name\":\"walk\",\"args\":{";
            writeCommonArgs(os, ev);
            os << ",\"accesses\":" << ev.arg0 << "}}";
            break;
        case EventKind::FaultRaised:
            w.next() << "{\"ph\":\"i\",\"pid\":0,\"tid\":" << tidBuffer
                     << ",\"ts\":" << ev.tick
                     << ",\"name\":\"fault_raised\",\"s\":\"t\","
                     << "\"args\":{";
            writeCommonArgs(os, ev);
            os << ",\"level\":" << unsigned(ev.level)
               << ",\"parked\":" << ev.arg0 << "}}";
            break;
        case EventKind::FaultServiced:
            // The raise-to-service window renders as a span ending at
            // the service tick; arg1 carries its duration.
            w.next() << "{\"ph\":\"X\",\"pid\":0,\"tid\":" << tidBuffer
                     << ",\"ts\":" << ev.tick - ev.arg1 << ",\"dur\":"
                     << ev.arg1 << ",\"name\":\"fault\",\"args\":{";
            writeCommonArgs(os, ev);
            os << ",\"released\":" << ev.arg0 << "}}";
            break;
        case EventKind::PrefetchIssued:
            walkersSeen.insert(ev.walker);
            w.next() << "{\"ph\":\"i\",\"pid\":0,\"tid\":"
                     << tidWalkerBase + ev.walker << ",\"ts\":"
                     << ev.tick << ",\"name\":\"prefetch_issued\","
                     << "\"s\":\"t\",\"args\":{";
            writeCommonArgs(os, ev);
            os << ",\"confidence_permille\":" << ev.arg0
               << ",\"trigger_page\":" << ev.arg1 << "}}";
            break;
        case EventKind::PrefetchUseful:
            w.next() << "{\"ph\":\"i\",\"pid\":0,\"tid\":" << tidTlb
                     << ",\"ts\":" << ev.tick
                     << ",\"name\":\"prefetch_useful\",\"s\":\"t\","
                     << "\"args\":{";
            writeCommonArgs(os, ev);
            os << "}}";
            break;
        case EventKind::LeaderIssued:
            w.next() << "{\"ph\":\"i\",\"pid\":0,\"tid\":" << tidTlb
                     << ",\"ts\":" << ev.tick
                     << ",\"name\":\"leader_issued\",\"s\":\"t\","
                     << "\"args\":{";
            writeCommonArgs(os, ev);
            os << ",\"cu\":" << ev.arg0
               << ",\"coalesced_pages\":" << ev.arg1 << "}}";
            break;
        case EventKind::SpecAdmitted:
            w.next() << "{\"ph\":\"i\",\"pid\":0,\"tid\":" << tidBuffer
                     << ",\"ts\":" << ev.tick
                     << ",\"name\":\"spec_admitted\",\"s\":\"t\","
                     << "\"args\":{";
            writeCommonArgs(os, ev);
            os << ",\"admission\":" << ev.arg0
               << ",\"spec_depth\":" << ev.arg1 << "}}";
            break;
        }
    });

    for (const auto walker : walkersSeen)
        writeMeta(w, tidWalkerBase + walker,
                  "walker " + std::to_string(walker));

    os << "\n]}\n";
}

void
writeChromeTraceFile(const std::string &path, const Tracer &tracer)
{
    std::ofstream os(path);
    if (!os)
        sim::fatal("cannot open '", path, "' for trace output");
    writeChromeTrace(os, tracer);
}

} // namespace gpuwalk::trace
