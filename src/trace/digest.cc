#include "trace/digest.hh"

#include <iomanip>
#include <sstream>

namespace gpuwalk::trace {

void
digestEvent(Fnv1a &h, const Event &ev)
{
    // Field-by-field (not memcpy of the struct): padding bytes must
    // never leak into the hash, and the encoding stays stable across
    // compilers and struct layout changes.
    h.u64(ev.tick);
    h.u64(static_cast<std::uint64_t>(ev.kind));
    h.u64(ev.level);
    h.u64(ev.walker);
    h.u64(ev.wavefront);
    h.u64(ev.instruction);
    h.u64(ev.vaPage);
    h.u64(ev.arg0);
    h.u64(ev.arg1);
    // Skip-default encoding: the context tag only enters the hash when
    // nonzero, so single-tenant (ctx 0) digests are byte-identical to
    // the pre-ASID goldens while multi-tenant streams still pin every
    // event's address space.
    if (ev.ctx)
        h.u64(ev.ctx);
}

std::uint64_t
digest(const Tracer &tracer)
{
    Fnv1a h;
    tracer.forEach([&h](const Event &ev) { digestEvent(h, ev); });
    h.u64(tracer.recorded());
    h.u64(tracer.dropped());
    return h.value();
}

std::string
digestHex(std::uint64_t value)
{
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0') << value;
    return os.str();
}

} // namespace gpuwalk::trace
