/**
 * @file
 * The Table II benchmark registry.
 */

#ifndef GPUWALK_WORKLOAD_REGISTRY_HH
#define GPUWALK_WORKLOAD_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace gpuwalk::workload {

/**
 * Creates the generator for @p abbrev ("XSB", "MVT", ...), matching
 * Table II. fatal() on unknown names.
 */
std::unique_ptr<WorkloadGenerator> makeWorkload(const std::string &abbrev);

/** All twelve Table II abbreviations, irregular set first. */
std::vector<std::string> allWorkloadNames();

/** The six irregular benchmarks (XSB MVT ATX NW BIC GEV). */
std::vector<std::string> irregularWorkloadNames();

/** The six regular benchmarks (SSP MIS CLR BCK KMN HOT). */
std::vector<std::string> regularWorkloadNames();

/** The four benchmarks shown in the paper's motivation figures 2-6. */
std::vector<std::string> motivationWorkloadNames();

} // namespace gpuwalk::workload

#endif // GPUWALK_WORKLOAD_REGISTRY_HH
