#include "workload/tenant_mix.hh"

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workload/registry.hh"

namespace gpuwalk::workload {

std::vector<TenantSpec>
generateTenantMix(const TenantMixConfig &cfg)
{
    GPUWALK_ASSERT(cfg.numTenants > 0, "tenant mix needs tenants");
    GPUWALK_ASSERT(cfg.footprintScaleMin > 0
                       && cfg.footprintScaleMax >= cfg.footprintScaleMin,
                   "bad footprint scale range");
    GPUWALK_ASSERT(cfg.churnFraction >= 0.0 && cfg.churnFraction <= 1.0,
                   "churn fraction outside [0, 1]");

    // Interleave irregular and regular workloads so neighbouring
    // tenants differ maximally in divergence.
    const auto irregular = irregularWorkloadNames();
    const auto regular = regularWorkloadNames();

    sim::Rng rng(cfg.seed);
    std::vector<TenantSpec> mix;
    mix.reserve(cfg.numTenants);

    const unsigned churned = static_cast<unsigned>(
        cfg.churnFraction * cfg.numTenants);

    for (unsigned i = 0; i < cfg.numTenants; ++i) {
        TenantSpec t;
        t.workload = (i % 2 == 0)
                         ? irregular[(i / 2) % irregular.size()]
                         : regular[(i / 2) % regular.size()];

        t.params.wavefronts = cfg.wavefrontsPerTenant;
        t.params.instructionsPerWavefront = cfg.instructionsPerWavefront;
        t.params.computeCycles = cfg.computeCycles;
        // Independent per-tenant trace stream: identical workloads in
        // one mix still touch different pages.
        t.params.seed = cfg.seed * 1000003ull + i;

        const double span =
            cfg.footprintScaleMax - cfg.footprintScaleMin;
        t.params.footprintScale =
            cfg.footprintScaleMin + span * rng.uniform();

        // The last `churned` tenants arrive mid-run, seeded-uniformly
        // over the churn window (always > 0, so they miss start()).
        if (i + churned >= cfg.numTenants && churned > 0) {
            t.arrivalTick = 1
                            + static_cast<sim::Tick>(rng.below(
                                  cfg.churnWindowTicks));
        }

        if (cfg.alternateWeights && i % 2 == 1)
            t.weight = 2;

        mix.push_back(std::move(t));
    }
    return mix;
}

} // namespace gpuwalk::workload
