/**
 * @file
 * XSBench: the DOE Monte Carlo neutron-transport proxy (212.25 MB).
 *
 * The macroscopic cross-section lookup kernel draws a random particle
 * energy per workitem, binary-searches the unionized energy grid, and
 * gathers per-nuclide cross-section data. Every lane follows an
 * independent random path, so each SIMD load touches up to 64 random
 * pages with essentially no reuse — the most translation-hostile
 * pattern in the suite.
 */

#ifndef GPUWALK_WORKLOAD_XSBENCH_HH
#define GPUWALK_WORKLOAD_XSBENCH_HH

#include "workload/workload.hh"

namespace gpuwalk::workload {

/** XSBench Monte Carlo neutronics proxy-app model. */
class XsbenchWorkload : public WorkloadGenerator
{
  public:
    XsbenchWorkload()
        : WorkloadGenerator(
              {"XSB", "Monte Carlo neutronics application", 212.25,
               true, 2.0})
    {}

  private:
    gpu::GpuWorkload doGenerate(vm::AddressSpace &as,
                                const WorkloadParams &params) override;
};

} // namespace gpuwalk::workload

#endif // GPUWALK_WORKLOAD_XSBENCH_HH
