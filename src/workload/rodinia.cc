#include "workload/rodinia.hh"

#include "workload/patterns.hh"

namespace gpuwalk::workload {

gpu::GpuWorkload
RodiniaWorkload::doGenerate(vm::AddressSpace &as,
                            const WorkloadParams &params)
{
    WorkloadParams scaled = params;
    scaled.computeCycles = baseCompute(params);
    constexpr mem::Addr elem = 4; // floats
    const mem::Addr footprint = scaledFootprintBytes(params);

    std::vector<vm::VaRegion> arrays;
    for (unsigned s = 0; s < streams_; ++s) {
        arrays.push_back(as.allocate("stream" + std::to_string(s),
                                     footprint / streams_));
    }
    // Small hot structure (weights / centroids / coefficients).
    const vm::VaRegion hot = as.allocate("hot", 16 * 1024);

    gpu::GpuWorkload w;
    w.traces.reserve(params.wavefronts);

    for (unsigned wf = 0; wf < params.wavefronts; ++wf) {
        sim::Rng rng(params.seed * 0x85ebca6bull + wf);
        gpu::WavefrontTrace trace;
        trace.reserve(params.instructionsPerWavefront);

        const std::uint64_t elems = arrays[0].bytes / elem;
        const std::uint64_t usable = elems - gpu::wavefrontSize;
        std::uint64_t pos = (std::uint64_t(wf) * elems)
                            / std::max(1u, params.wavefronts);
        std::uint64_t step = 0;

        while (trace.size() < params.instructionsPerWavefront) {
            for (unsigned s = 0;
                 s < streams_
                 && trace.size() < params.instructionsPerWavefront;
                 ++s) {
                const bool is_store = (s + 1 == streams_)
                                      && (step % 2 == 1);
                trace.push_back(makeInstr(
                    sequentialLanes(arrays[s].base
                                        + (pos % usable) * elem,
                                    elem),
                    !is_store, jitteredCompute(rng, scaled.computeCycles)));
            }
            pos += gpu::wavefrontSize;
            ++step;
            if (broadcastPeriod_ != 0 && step % broadcastPeriod_ == 0
                && trace.size() < params.instructionsPerWavefront) {
                trace.push_back(makeInstr(
                    broadcastLanes(hot.base
                                   + (step % (hot.bytes / 64)) * 64),
                    true, jitteredCompute(rng, scaled.computeCycles)));
            }
        }
        trace.resize(params.instructionsPerWavefront);
        w.traces.push_back(std::move(trace));
    }
    return w;
}

} // namespace gpuwalk::workload
