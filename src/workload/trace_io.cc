#include "workload/trace_io.hh"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "sim/logging.hh"
#include "tlb/coalescer.hh"

namespace gpuwalk::workload {

namespace {
constexpr const char *magic = "gpuwalk-trace v1";
} // namespace

void
saveTrace(std::ostream &os, const gpu::GpuWorkload &workload)
{
    os << magic << "\n";
    os << "wavefronts " << workload.traces.size() << "\n";
    for (std::size_t wf = 0; wf < workload.traces.size(); ++wf) {
        const auto &trace = workload.traces[wf];
        os << "wavefront " << wf << " instructions " << trace.size()
           << "\n";
        for (const auto &instr : trace) {
            os << (instr.isLoad ? 'L' : 'S') << ' '
               << instr.computeCycles << ' ' << instr.laneAddrs.size();
            os << std::hex;
            for (auto a : instr.laneAddrs)
                os << ' ' << a;
            os << std::dec << "\n";
        }
    }
}

gpu::GpuWorkload
loadTrace(std::istream &is)
{
    std::string line;
    if (!std::getline(is, line) || line != magic)
        sim::fatal("trace: bad magic line '", line, "' (expected '",
                   magic, "')");

    std::string word;
    std::size_t wavefronts = 0;
    is >> word >> wavefronts;
    if (word != "wavefronts")
        sim::fatal("trace: expected 'wavefronts', got '", word, "'");

    gpu::GpuWorkload workload;
    workload.traces.reserve(wavefronts);

    for (std::size_t wf = 0; wf < wavefronts; ++wf) {
        std::size_t id = 0, instructions = 0;
        is >> word >> id;
        if (word != "wavefront" || id != wf)
            sim::fatal("trace: bad wavefront header (wf ", wf, ")");
        is >> word >> instructions;
        if (word != "instructions")
            sim::fatal("trace: expected 'instructions'");

        gpu::WavefrontTrace trace;
        trace.reserve(instructions);
        for (std::size_t k = 0; k < instructions; ++k) {
            char kind = 0;
            std::uint64_t compute = 0;
            std::size_t lanes = 0;
            is >> kind >> compute >> lanes;
            if (!is || (kind != 'L' && kind != 'S'))
                sim::fatal("trace: bad instruction record (wf ", wf,
                           " instr ", k, ")");
            if (lanes > gpu::wavefrontSize)
                sim::fatal("trace: lane count ", lanes, " exceeds ",
                           gpu::wavefrontSize);
            gpu::SimdMemInstruction instr;
            instr.isLoad = kind == 'L';
            instr.computeCycles = compute;
            instr.laneAddrs.reserve(lanes);
            is >> std::hex;
            for (std::size_t l = 0; l < lanes; ++l) {
                mem::Addr a = 0;
                is >> a;
                instr.laneAddrs.push_back(a);
            }
            is >> std::dec;
            if (!is)
                sim::fatal("trace: truncated lane list (wf ", wf,
                           " instr ", k, ")");
            trace.push_back(std::move(instr));
        }
        workload.traces.push_back(std::move(trace));
    }
    return workload;
}

void
saveTraceFile(const std::string &path, const gpu::GpuWorkload &workload)
{
    std::ofstream os(path);
    if (!os)
        sim::fatal("cannot open '", path, "' for writing");
    saveTrace(os, workload);
    if (!os)
        sim::fatal("error while writing '", path, "'");
}

gpu::GpuWorkload
loadTraceFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        sim::fatal("cannot open '", path, "' for reading");
    return loadTrace(is);
}

TraceSummary
summarizeTrace(const gpu::GpuWorkload &workload)
{
    TraceSummary s;
    s.wavefronts = workload.traces.size();
    double lanes = 0.0, pages = 0.0;
    for (const auto &trace : workload.traces) {
        for (const auto &instr : trace) {
            ++s.instructions;
            if (instr.isLoad)
                ++s.loads;
            else
                ++s.stores;
            lanes += static_cast<double>(instr.laneAddrs.size());
            pages += static_cast<double>(
                tlb::coalesce(instr.laneAddrs).pages.size());
            s.totalComputeCycles += instr.computeCycles;
        }
    }
    if (s.instructions > 0) {
        s.avgActiveLanes = lanes / static_cast<double>(s.instructions);
        s.avgUniquePages = pages / static_cast<double>(s.instructions);
    }
    return s;
}

void
mapTraceAddresses(vm::AddressSpace &as, const gpu::GpuWorkload &workload)
{
    for (const auto &trace : workload.traces)
        for (const auto &instr : trace)
            for (auto a : instr.laneAddrs)
                as.ensureMapped(a);
}

} // namespace gpuwalk::workload
