#include "workload/nw.hh"

#include "workload/patterns.hh"

namespace gpuwalk::workload {

gpu::GpuWorkload
NwWorkload::doGenerate(vm::AddressSpace &as, const WorkloadParams &params)
{
    WorkloadParams scaled = params;
    scaled.computeCycles = baseCompute(params);
    constexpr mem::Addr elem = 4; // int scores
    const mem::Addr footprint = scaledFootprintBytes(params);
    // Score matrix + reference (similarity) matrix, equal sized.
    const std::uint64_t n = squareDim(footprint / 2, elem);
    const vm::VaRegion score = as.allocate("score", n * n * elem);
    const vm::VaRegion ref = as.allocate("reference", n * n * elem);

    // Anti-diagonal stride between lane cells: down one row, left one
    // column.
    const mem::Addr diag_stride = (n - 1) * elem;

    gpu::GpuWorkload w;
    w.traces.reserve(params.wavefronts);

    const std::uint64_t row_blocks =
        std::max<std::uint64_t>(1, (n - gpu::wavefrontSize)
                                       / gpu::wavefrontSize);

    for (unsigned wf = 0; wf < params.wavefronts; ++wf) {
        sim::Rng rng(params.seed * 0x7f4a7c15ull + wf);
        gpu::WavefrontTrace trace;
        trace.reserve(params.instructionsPerWavefront);

        // Each wavefront owns a 64-row band and slides the diagonal
        // rightwards across it.
        const std::uint64_t r0 =
            (std::uint64_t(wf) % row_blocks) * gpu::wavefrontSize;
        std::uint64_t c = gpu::wavefrontSize + (wf % 17);

        auto cell = [&](const vm::VaRegion &m, std::uint64_t row,
                        std::uint64_t col) {
            return m.base + (row * n + col % (n - gpu::wavefrontSize)) * elem;
        };

        while (trace.size() < params.instructionsPerWavefront) {
            // Load the north-west dependency diagonal (divergent).
            trace.push_back(makeInstr(
                stridedLanes(cell(score, r0, c - 1), diag_stride), true,
                jitteredCompute(rng, scaled.computeCycles)));
            if (trace.size() >= params.instructionsPerWavefront)
                break;
            // Load the reference matrix along the same diagonal.
            trace.push_back(makeInstr(
                stridedLanes(cell(ref, r0, c), diag_stride), true,
                jitteredCompute(rng, scaled.computeCycles)));
            if (trace.size() >= params.instructionsPerWavefront)
                break;
            // Store the computed diagonal.
            trace.push_back(makeInstr(
                stridedLanes(cell(score, r0, c), diag_stride), false,
                jitteredCompute(rng, scaled.computeCycles)));
            ++c;
        }
        trace.resize(params.instructionsPerWavefront);
        w.traces.push_back(std::move(trace));
    }
    return w;
}

} // namespace gpuwalk::workload
