/**
 * @file
 * Workload trace serialization.
 *
 * A simple versioned text format so traces can be generated once,
 * archived, inspected, or produced by external tools (e.g. a real
 * binary-instrumentation pass) and replayed through the simulator:
 *
 *   gpuwalk-trace v1
 *   wavefronts <N>
 *   wavefront <id> instructions <M>
 *   <L|S> <computeCycles> <laneCount> <addr0> <addr1> ...
 *   ...
 *
 * Addresses are hexadecimal. The format is deliberately line-oriented
 * and greppable.
 */

#ifndef GPUWALK_WORKLOAD_TRACE_IO_HH
#define GPUWALK_WORKLOAD_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "gpu/instruction.hh"
#include "vm/address_space.hh"

namespace gpuwalk::workload {

/** Writes @p workload to @p os in the gpuwalk-trace v1 format. */
void saveTrace(std::ostream &os, const gpu::GpuWorkload &workload);

/**
 * Parses a gpuwalk-trace v1 stream. fatal() on malformed input
 * (version mismatch, truncated records, lane counts out of range).
 */
gpu::GpuWorkload loadTrace(std::istream &is);

/** Convenience wrappers over file streams; fatal() on I/O errors. */
void saveTraceFile(const std::string &path,
                   const gpu::GpuWorkload &workload);
gpu::GpuWorkload loadTraceFile(const std::string &path);

/** Summary statistics of a trace (for inspection tools). */
struct TraceSummary
{
    std::size_t wavefronts = 0;
    std::size_t instructions = 0;
    std::size_t loads = 0;
    std::size_t stores = 0;
    double avgActiveLanes = 0.0;
    double avgUniquePages = 0.0;   ///< post-coalescing divergence
    std::uint64_t totalComputeCycles = 0;
};

/** Computes summary statistics of @p workload. */
TraceSummary summarizeTrace(const gpu::GpuWorkload &workload);

/**
 * Eagerly maps every page an external trace touches into @p as
 * (replayed traces reference virtual addresses that were never
 * allocated through the address space). Idempotent.
 */
void mapTraceAddresses(vm::AddressSpace &as,
                       const gpu::GpuWorkload &workload);

} // namespace gpuwalk::workload

#endif // GPUWALK_WORKLOAD_TRACE_IO_HH
