#include "workload/patterns.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace gpuwalk::workload {

std::vector<mem::Addr>
stridedLanes(mem::Addr base, mem::Addr stride, unsigned lanes)
{
    std::vector<mem::Addr> out;
    out.reserve(lanes);
    for (unsigned i = 0; i < lanes; ++i)
        out.push_back(base + mem::Addr(i) * stride);
    return out;
}

std::vector<mem::Addr>
sequentialLanes(mem::Addr base, mem::Addr elem_bytes, unsigned lanes)
{
    return stridedLanes(base, elem_bytes, lanes);
}

std::vector<mem::Addr>
broadcastLanes(mem::Addr addr, unsigned lanes)
{
    return std::vector<mem::Addr>(lanes, addr);
}

std::vector<mem::Addr>
randomLanes(sim::Rng &rng, const vm::VaRegion &region,
            mem::Addr elem_bytes, unsigned lanes)
{
    GPUWALK_ASSERT(region.bytes >= elem_bytes, "region too small");
    const std::uint64_t elems = region.bytes / elem_bytes;
    std::vector<mem::Addr> out;
    out.reserve(lanes);
    for (unsigned i = 0; i < lanes; ++i)
        out.push_back(region.base + rng.below(elems) * elem_bytes);
    return out;
}

std::vector<mem::Addr>
windowedRandomLanes(sim::Rng &rng, const vm::VaRegion &region,
                    mem::Addr elem_bytes, std::uint64_t focus_elem,
                    std::uint64_t window_elems, unsigned lanes)
{
    const std::uint64_t elems = region.bytes / elem_bytes;
    GPUWALK_ASSERT(elems > 0, "region too small");
    const std::uint64_t half = window_elems / 2;
    const std::uint64_t centre = std::min(focus_elem, elems - 1);
    const std::uint64_t lo = centre > half ? centre - half : 0;
    const std::uint64_t hi = std::min(elems - 1, centre + half);
    std::vector<mem::Addr> out;
    out.reserve(lanes);
    for (unsigned i = 0; i < lanes; ++i)
        out.push_back(region.base + rng.range(lo, hi) * elem_bytes);
    return out;
}

gpu::SimdMemInstruction
makeInstr(std::vector<mem::Addr> lanes, bool is_load,
          sim::Cycles compute_cycles)
{
    gpu::SimdMemInstruction instr;
    instr.laneAddrs = std::move(lanes);
    instr.isLoad = is_load;
    instr.computeCycles = compute_cycles;
    return instr;
}

sim::Cycles
jitteredCompute(sim::Rng &rng, sim::Cycles base)
{
    if (base < 2)
        return base;
    return base / 2 + rng.below(base);
}

unsigned
activeLaneCount(sim::Rng &rng, double partial_prob)
{
    if (!rng.chance(partial_prob))
        return gpu::wavefrontSize;
    // Partial masks cluster at power-of-two-ish fractions.
    return static_cast<unsigned>(
        rng.range(gpu::wavefrontSize / 8, gpu::wavefrontSize - 1));
}

std::uint64_t
squareDim(mem::Addr footprint_bytes, mem::Addr elem_bytes)
{
    const double n = std::sqrt(static_cast<double>(footprint_bytes)
                               / static_cast<double>(elem_bytes));
    return std::max<std::uint64_t>(
        gpu::wavefrontSize, static_cast<std::uint64_t>(n));
}

} // namespace gpuwalk::workload
