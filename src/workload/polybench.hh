/**
 * @file
 * Polybench-derived irregular workloads: MVT, ATAX, BICG, GESUMMV.
 *
 * In the GPU ports of these kernels each workitem owns one matrix row
 * and the inner loop runs over columns, so a single SIMD load touches
 * a fixed column j across 64 consecutive rows — a stride of N*8 bytes,
 * far larger than a page. Every such instruction therefore needs up to
 * 64 translations (full memory-access divergence), while the
 * interleaved vector operands stay coalesced. Consecutive column steps
 * reuse the same 64 row-pages, giving intra-wavefront TLB locality
 * that inter-wavefront contention thrashes — the dynamics behind the
 * paper's Figures 11 and 12.
 */

#ifndef GPUWALK_WORKLOAD_POLYBENCH_HH
#define GPUWALK_WORKLOAD_POLYBENCH_HH

#include "workload/workload.hh"

namespace gpuwalk::workload {

/** MVT: matrix-vector product and transpose (128.14 MB). */
class MvtWorkload : public WorkloadGenerator
{
  public:
    MvtWorkload()
        : WorkloadGenerator({"MVT",
                             "Matrix vector product and transpose",
                             128.14, true, 1.0})
    {}

  private:
    gpu::GpuWorkload doGenerate(vm::AddressSpace &as,
                                const WorkloadParams &params) override;
};

/** ATAX: matrix transpose and vector multiplication (64.06 MB). */
class AtaxWorkload : public WorkloadGenerator
{
  public:
    AtaxWorkload()
        : WorkloadGenerator(
              {"ATX", "Matrix transpose and vector multiplication",
               64.06, true, 1.0})
    {}

  private:
    gpu::GpuWorkload doGenerate(vm::AddressSpace &as,
                                const WorkloadParams &params) override;
};

/** BICG: sub-kernel of the BiCGStab linear solver (128.11 MB). */
class BicgWorkload : public WorkloadGenerator
{
  public:
    BicgWorkload()
        : WorkloadGenerator(
              {"BIC", "Sub kernel of BiCGStab linear solver", 128.11,
               true, 1.0})
    {}

  private:
    gpu::GpuWorkload doGenerate(vm::AddressSpace &as,
                                const WorkloadParams &params) override;
};

/** GESUMMV: scalar, vector and matrix multiplication (128.06 MB). */
class GesummvWorkload : public WorkloadGenerator
{
  public:
    GesummvWorkload()
        : WorkloadGenerator(
              {"GEV", "Scalar, vector and matrix multiplication",
               128.06, true, 6.0})
    {}

  private:
    gpu::GpuWorkload doGenerate(vm::AddressSpace &as,
                                const WorkloadParams &params) override;
};

} // namespace gpuwalk::workload

#endif // GPUWALK_WORKLOAD_POLYBENCH_HH
