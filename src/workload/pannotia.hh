/**
 * @file
 * Pannotia graph workloads: SSSP, MIS, Color (paper: regular).
 *
 * The paper classifies these three as regular — their CSR traversals
 * stream offset/index arrays with unit stride, and vertex-property
 * gathers cluster around the frontier (community locality), so the
 * coalescer and TLBs absorb nearly all translation traffic. They are
 * included to show the scheduler does not hurt translation-insensitive
 * workloads (Figs. 8 and 9, right halves).
 */

#ifndef GPUWALK_WORKLOAD_PANNOTIA_HH
#define GPUWALK_WORKLOAD_PANNOTIA_HH

#include "workload/workload.hh"

namespace gpuwalk::workload {

/** Shared CSR-traversal shape of the three Pannotia kernels. */
class PannotiaWorkload : public WorkloadGenerator
{
  public:
    PannotiaWorkload(WorkloadInfo info, unsigned gather_period,
                     std::uint64_t window_elems)
        : WorkloadGenerator(std::move(info)),
          gatherPeriod_(gather_period), windowElems_(window_elems)
    {}

  private:
    gpu::GpuWorkload doGenerate(vm::AddressSpace &as,
                                const WorkloadParams &params) override;

    unsigned gatherPeriod_;
    std::uint64_t windowElems_;
};

/** SSSP: shortest path search (104.32 MB). */
class SsspWorkload : public PannotiaWorkload
{
  public:
    SsspWorkload()
        : PannotiaWorkload({"SSP", "Shortest path search algorithm",
                            104.32, false},
                           /*gather_period=*/3,
                           /*window_elems=*/4096)
    {}
};

/** MIS: maximal independent set (72.38 MB). */
class MisWorkload : public PannotiaWorkload
{
  public:
    MisWorkload()
        : PannotiaWorkload({"MIS", "Maximal subset search algorithm",
                            72.38, false},
                           /*gather_period=*/4,
                           /*window_elems=*/2048)
    {}
};

/** Color: graph coloring (26.68 MB). */
class ColorWorkload : public PannotiaWorkload
{
  public:
    ColorWorkload()
        : PannotiaWorkload({"CLR", "Graph coloring algorithm", 26.68,
                            false},
                           /*gather_period=*/4,
                           /*window_elems=*/2048)
    {}
};

} // namespace gpuwalk::workload

#endif // GPUWALK_WORKLOAD_PANNOTIA_HH
