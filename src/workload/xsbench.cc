#include "workload/xsbench.hh"

#include "workload/patterns.hh"

namespace gpuwalk::workload {

gpu::GpuWorkload
XsbenchWorkload::doGenerate(vm::AddressSpace &as,
                            const WorkloadParams &params)
{
    WorkloadParams scaled = params;
    scaled.computeCycles = baseCompute(params);
    const mem::Addr footprint = scaledFootprintBytes(params);
    // Roughly XSBench's split: the unionized energy grid dominates,
    // plus nuclide grid-point data.
    const vm::VaRegion grid =
        as.allocate("energy_grid", footprint * 2 / 3);
    const vm::VaRegion xs_data =
        as.allocate("nuclide_xs", footprint / 3);

    const std::uint64_t grid_elems = grid.bytes / 8;
    constexpr unsigned probeSteps = 6;

    gpu::GpuWorkload w;
    w.traces.reserve(params.wavefronts);

    for (unsigned wf = 0; wf < params.wavefronts; ++wf) {
        sim::Rng rng(params.seed * 2654435761ull + wf);
        gpu::WavefrontTrace trace;
        trace.reserve(params.instructionsPerWavefront);

        while (trace.size() < params.instructionsPerWavefront) {
            // One Monte Carlo lookup per lane: a binary search over
            // the unionized energy grid. Each lane has its own target
            // energy, but the search narrows top-down, so the first
            // probe steps land on the (hot, shared) upper levels of
            // the search tree and only the last steps fully diverge —
            // per-instruction translation work therefore ramps from
            // one page to one page per lane within each lookup.
            std::vector<std::uint64_t> target(gpu::wavefrontSize);
            for (auto &t : target)
                t = rng.below(grid_elems);

            for (unsigned step = 0;
                 step < probeSteps
                 && trace.size() < params.instructionsPerWavefront;
                 ++step) {
                // Probe address: the lane's target rounded to the
                // granularity of this search level.
                const std::uint64_t buckets = 1ull << (step + 1);
                const std::uint64_t gran =
                    std::max<std::uint64_t>(1, grid_elems / buckets);
                std::vector<mem::Addr> lanes;
                lanes.reserve(gpu::wavefrontSize);
                for (auto t : target) {
                    const std::uint64_t mid =
                        (t / gran) * gran + gran / 2;
                    lanes.push_back(grid.base
                                    + (mid % grid_elems) * 8);
                }
                trace.push_back(makeInstr(
                    std::move(lanes), true,
                    jitteredCompute(rng, scaled.computeCycles)));
            }

            if (trace.size() < params.instructionsPerWavefront) {
                // Gather the nuclide cross-section data at the located
                // grid point: fully divergent, one random page per
                // lane.
                trace.push_back(makeInstr(
                    randomLanes(rng, xs_data, 8), true,
                    jitteredCompute(rng, scaled.computeCycles)));
            }
            if (trace.size() < params.instructionsPerWavefront) {
                // Accumulate per-workitem results: coalesced store.
                trace.push_back(makeInstr(
                    sequentialLanes(
                        xs_data.base
                            + (std::uint64_t(wf) * gpu::wavefrontSize
                               * 8)
                                  % (xs_data.bytes / 2),
                        8),
                    false, jitteredCompute(rng, scaled.computeCycles)));
            }
        }
        trace.resize(params.instructionsPerWavefront);
        w.traces.push_back(std::move(trace));
    }
    return w;
}

} // namespace gpuwalk::workload
