#include "workload/polybench.hh"

#include "workload/patterns.hh"

namespace gpuwalk::workload {

namespace {

constexpr mem::Addr elemBytes = 8; // doubles

/** Shared shape of the four kernels' traces. */
struct MatrixKernel
{
    vm::VaRegion a;          ///< primary matrix
    vm::VaRegion b;          ///< optional second matrix (GESUMMV)
    vm::VaRegion x;          ///< broadcast operand vector
    vm::VaRegion y;          ///< sequential operand/result vector
    std::uint64_t n = 0;     ///< matrix dimension

    mem::Addr
    columnAddr(std::uint64_t row, std::uint64_t col,
               const vm::VaRegion &m) const
    {
        return m.base + (row * n + col) * elemBytes;
    }
};

/**
 * Emits one wavefront's trace for a column-sweeping kernel.
 *
 * @param k Kernel geometry.
 * @param wf Wavefront index (selects the row block and column phase).
 * @param params Trace length etc.
 * @param use_b Interleave loads from the second matrix (GESUMMV).
 * @param vector_period Emit a coalesced vector access every this many
 *        column steps (controls the divergent:coalesced mix).
 */
gpu::WavefrontTrace
columnSweepTrace(const MatrixKernel &k, unsigned wf,
                 const WorkloadParams &params, bool use_b,
                 unsigned vector_period)
{
    gpu::WavefrontTrace trace;
    trace.reserve(params.instructionsPerWavefront);
    sim::Rng rng(params.seed * 0x9e3779b9ull + wf);

    // Keep the whole 64-row block inside the matrix.
    const std::uint64_t row_blocks = k.n / gpu::wavefrontSize;
    const std::uint64_t row0 =
        (std::uint64_t(wf) % row_blocks) * gpu::wavefrontSize;
    // Phase-shift the column start per wavefront so wavefronts do not
    // march in lockstep over the same columns.
    std::uint64_t col = (std::uint64_t(wf) * 97) % k.n;

    auto compute = [&] {
        return jitteredCompute(rng, params.computeCycles);
    };

    unsigned step = 0;
    while (trace.size() < params.instructionsPerWavefront) {
        // Column load from A: lane i touches A[row0+i][col]; the row
        // stride (n*8 bytes) exceeds a page, so this diverges across
        // as many pages as there are active lanes. Loop tails and
        // branch masks occasionally deactivate part of the wavefront.
        trace.push_back(makeInstr(
            stridedLanes(k.columnAddr(row0, col, k.a),
                         k.n * elemBytes, activeLaneCount(rng)),
            true, compute()));

        if (use_b && trace.size() < params.instructionsPerWavefront) {
            trace.push_back(makeInstr(
                stridedLanes(k.columnAddr(row0, col, k.b),
                             k.n * elemBytes, activeLaneCount(rng)),
                true, compute()));
        }

        if (++step % vector_period == 0
            && trace.size() < params.instructionsPerWavefront) {
            // Broadcast operand x[col] (perfectly coalesced)...
            trace.push_back(makeInstr(
                broadcastLanes(k.x.base + (col % k.n) * elemBytes),
                true, compute()));
            if (trace.size() < params.instructionsPerWavefront) {
                // ...and the per-row accumulator y[row0+lane]
                // (sequential, 1-2 pages).
                trace.push_back(makeInstr(
                    sequentialLanes(k.y.base + row0 * elemBytes,
                                    elemBytes),
                    false, compute()));
            }
        }
        col = (col + 1) % k.n;
    }
    trace.resize(params.instructionsPerWavefront);
    return trace;
}

/** Allocates the kernel's buffers at the scaled footprint. */
MatrixKernel
makeKernel(vm::AddressSpace &as, mem::Addr footprint_bytes,
           unsigned matrices)
{
    MatrixKernel k;
    // Vectors are a rounding error; size matrices from the footprint.
    k.n = squareDim(footprint_bytes / matrices, elemBytes);
    k.a = as.allocate("A", k.n * k.n * elemBytes);
    if (matrices > 1)
        k.b = as.allocate("B", k.n * k.n * elemBytes);
    k.x = as.allocate("x", k.n * elemBytes);
    k.y = as.allocate("y", k.n * elemBytes);
    return k;
}

/**
 * Emits a row-streaming phase: thread-per-column kernels (ATAX's
 * y = A^T tmp, BICG's s = A^T r) walk each matrix row with 64
 * consecutive lanes — unit-stride, coalescing to one or two pages —
 * interleaved with broadcast reads of the per-row operand.
 */
gpu::WavefrontTrace
rowStreamTrace(const MatrixKernel &k, unsigned wf,
               const WorkloadParams &params, std::size_t count,
               sim::Rng &rng)
{
    gpu::WavefrontTrace trace;
    trace.reserve(count);
    const std::uint64_t cols = k.n - gpu::wavefrontSize;
    std::uint64_t row = (std::uint64_t(wf) * 131) % k.n;
    std::uint64_t col = (std::uint64_t(wf) * 61) % cols;

    while (trace.size() < count) {
        // 64 consecutive elements of row: coalesced.
        trace.push_back(makeInstr(
            sequentialLanes(k.a.base + (row * k.n + col) * elemBytes,
                            elemBytes),
            true, jitteredCompute(rng, params.computeCycles)));
        col += gpu::wavefrontSize;
        if (col >= cols) {
            col = 0;
            row = (row + 1) % k.n;
        }
        if (trace.size() < count && trace.size() % 4 == 0) {
            // Broadcast of the per-row operand (tmp[i] / r[i]).
            trace.push_back(makeInstr(
                broadcastLanes(k.y.base + row * elemBytes), true,
                jitteredCompute(rng, params.computeCycles)));
        }
    }
    trace.resize(count);
    return trace;
}

/**
 * Two-phase kernels (ATAX, BICG): a divergent column-sweep kernel
 * followed by a coalesced row-streaming kernel, as their GPU ports
 * launch them (thread-per-row then thread-per-column).
 */
gpu::GpuWorkload
buildTwoPhaseWorkload(vm::AddressSpace &as, const WorkloadParams &params,
                      mem::Addr footprint, unsigned vector_period)
{
    const MatrixKernel k = makeKernel(as, footprint, 1);
    gpu::GpuWorkload w;
    w.traces.reserve(params.wavefronts);
    for (unsigned wf = 0; wf < params.wavefronts; ++wf) {
        sim::Rng rng(params.seed * 0x9e3779b9ull + wf);
        // Divergent phase first (the translation-bound kernel).
        WorkloadParams phase1 = params;
        phase1.instructionsPerWavefront =
            params.instructionsPerWavefront * 3 / 4;
        auto trace =
            columnSweepTrace(k, wf, phase1, false, vector_period);
        // Coalesced second kernel.
        auto tail = rowStreamTrace(
            k, wf, params,
            params.instructionsPerWavefront - trace.size(), rng);
        trace.insert(trace.end(),
                     std::make_move_iterator(tail.begin()),
                     std::make_move_iterator(tail.end()));
        w.traces.push_back(std::move(trace));
    }
    return w;
}

gpu::GpuWorkload
buildWorkload(vm::AddressSpace &as, const WorkloadParams &params,
              mem::Addr footprint, unsigned matrices, bool use_b,
              unsigned vector_period)
{
    const MatrixKernel k = makeKernel(as, footprint, matrices);
    // params.computeCycles has already been scaled by the caller.
    gpu::GpuWorkload w;
    w.traces.reserve(params.wavefronts);
    for (unsigned wf = 0; wf < params.wavefronts; ++wf)
        w.traces.push_back(
            columnSweepTrace(k, wf, params, use_b, vector_period));
    return w;
}

} // namespace

gpu::GpuWorkload
MvtWorkload::doGenerate(vm::AddressSpace &as, const WorkloadParams &params)
{
    // x1 += A[i][j]*y1[j] plus the transposed kernel: one matrix,
    // vector op every 2 column steps (divergent:coalesced ~ 1:1).
    WorkloadParams scaled = params;
    scaled.computeCycles = baseCompute(params);
    return buildWorkload(as, scaled, scaledFootprintBytes(params),
                         /*matrices=*/1, /*use_b=*/false,
                         /*vector_period=*/2);
}

gpu::GpuWorkload
AtaxWorkload::doGenerate(vm::AddressSpace &as,
                         const WorkloadParams &params)
{
    // A^T (A x): a divergent thread-per-row kernel (tmp = A x)
    // followed by a coalesced thread-per-column kernel (y = A^T tmp).
    WorkloadParams scaled = params;
    scaled.computeCycles = baseCompute(params);
    return buildTwoPhaseWorkload(as, scaled,
                                 scaledFootprintBytes(params),
                                 /*vector_period=*/3);
}

gpu::GpuWorkload
BicgWorkload::doGenerate(vm::AddressSpace &as,
                         const WorkloadParams &params)
{
    // q = A p diverges (thread per row); s = A^T r streams rows
    // (thread per column) — the same two-phase shape as ATAX at a
    // 2x larger matrix.
    WorkloadParams scaled = params;
    scaled.computeCycles = baseCompute(params);
    return buildTwoPhaseWorkload(as, scaled,
                                 scaledFootprintBytes(params),
                                 /*vector_period=*/2);
}

gpu::GpuWorkload
GesummvWorkload::doGenerate(vm::AddressSpace &as,
                            const WorkloadParams &params)
{
    // y = alpha*A*x + beta*B*x: two divergent matrix streams per
    // column step — the heaviest translation load of the four
    // (matching its Fig. 3 distribution).
    WorkloadParams scaled = params;
    scaled.computeCycles = baseCompute(params);
    return buildWorkload(as, scaled, scaledFootprintBytes(params),
                         /*matrices=*/2, /*use_b=*/true,
                         /*vector_period=*/4);
}

} // namespace gpuwalk::workload
