/**
 * @file
 * NW: Needleman-Wunsch DNA sequence alignment (531.82 MB).
 *
 * The dynamic-programming kernel sweeps the score matrix along
 * anti-diagonals: lane i updates cell (r+i, c-i), whose address stride
 * is (N-1)*4 bytes — tens of kilobytes for the paper's footprint, so
 * every diagonal step is fully page-divergent. Consecutive diagonals
 * revisit the same rows, giving strong intra-wavefront page reuse
 * (unlike XSBench's pure-random accesses).
 */

#ifndef GPUWALK_WORKLOAD_NW_HH
#define GPUWALK_WORKLOAD_NW_HH

#include "workload/workload.hh"

namespace gpuwalk::workload {

/** Needleman-Wunsch anti-diagonal DP sweep model. */
class NwWorkload : public WorkloadGenerator
{
  public:
    NwWorkload()
        : WorkloadGenerator(
              {"NW",
               "Optimization algorithm for DNA sequence alignments",
               531.82, true, 1.5})
    {}

  private:
    gpu::GpuWorkload doGenerate(vm::AddressSpace &as,
                                const WorkloadParams &params) override;
};

} // namespace gpuwalk::workload

#endif // GPUWALK_WORKLOAD_NW_HH
