/**
 * @file
 * Multi-tenant mix generation: a deterministic plan of N tenants with
 * heterogeneous workloads, footprints, and arrival times, for the
 * QoS/fairness experiments (the paper's §VII discussion of shared
 * IOMMUs under MASK-style multi-application loads).
 *
 * The generator only *plans* — each entry names a registry workload,
 * its parameters, and an arrival tick. The caller materializes the
 * plan against a System: one createContext() per tenant, then
 * loadBenchmarkInContext() (at the arrival tick for churned tenants).
 */

#ifndef GPUWALK_WORKLOAD_TENANT_MIX_HH
#define GPUWALK_WORKLOAD_TENANT_MIX_HH

#include <string>
#include <vector>

#include "sim/ticks.hh"
#include "workload/workload.hh"

namespace gpuwalk::workload {

/** One tenant of a generated mix. */
struct TenantSpec
{
    /** Registry abbreviation of the tenant's workload. */
    std::string workload;

    /** Trace-generation parameters (footprint, wavefronts, seed). */
    WorkloadParams params;

    /** Arrival: 0 = loaded before start; else joins at this tick. */
    sim::Tick arrivalTick = 0;

    /** Weight for the weighted-share scheduler (1 = equal). */
    std::uint32_t weight = 1;
};

/** Shape of a generated tenant mix. */
struct TenantMixConfig
{
    unsigned numTenants = 8;

    /** Master seed; tenant workloads derive per-tenant streams. */
    std::uint64_t seed = 1;

    /** Wavefronts per tenant (split across shared CUs). */
    unsigned wavefrontsPerTenant = 16;

    unsigned instructionsPerWavefront = 8;

    /**
     * Footprints are drawn from [footprintScaleMin, footprintScaleMax]
     * so tenants stress the shared TLBs and PWCs unevenly.
     */
    double footprintScaleMin = 0.02;
    double footprintScaleMax = 0.10;

    sim::Cycles computeCycles = 20;

    /**
     * Fraction of tenants (rounded down) that arrive mid-run, spread
     * seeded-uniformly over (0, churnWindowTicks]. 0 disables churn.
     */
    double churnFraction = 0.0;
    sim::Tick churnWindowTicks = 2'000'000;

    /**
     * Give every second tenant double weight (weighted-share runs);
     * false = all weights 1.
     */
    bool alternateWeights = false;
};

/**
 * Generates @p cfg.numTenants tenant specs: workloads cycle through
 * the irregular-then-regular registry (maximal divergence
 * heterogeneity), footprints and arrivals are drawn from @p cfg's
 * seeded stream. Deterministic: equal configs yield equal plans.
 */
std::vector<TenantSpec> generateTenantMix(const TenantMixConfig &cfg);

} // namespace gpuwalk::workload

#endif // GPUWALK_WORKLOAD_TENANT_MIX_HH
