#include "workload/registry.hh"

#include "sim/logging.hh"
#include "workload/nw.hh"
#include "workload/pannotia.hh"
#include "workload/polybench.hh"
#include "workload/rodinia.hh"
#include "workload/xsbench.hh"

namespace gpuwalk::workload {

std::unique_ptr<WorkloadGenerator>
makeWorkload(const std::string &abbrev)
{
    if (abbrev == "XSB")
        return std::make_unique<XsbenchWorkload>();
    if (abbrev == "MVT")
        return std::make_unique<MvtWorkload>();
    if (abbrev == "ATX")
        return std::make_unique<AtaxWorkload>();
    if (abbrev == "NW")
        return std::make_unique<NwWorkload>();
    if (abbrev == "BIC")
        return std::make_unique<BicgWorkload>();
    if (abbrev == "GEV")
        return std::make_unique<GesummvWorkload>();
    if (abbrev == "SSP")
        return std::make_unique<SsspWorkload>();
    if (abbrev == "MIS")
        return std::make_unique<MisWorkload>();
    if (abbrev == "CLR")
        return std::make_unique<ColorWorkload>();
    if (abbrev == "BCK")
        return std::make_unique<BackpropWorkload>();
    if (abbrev == "KMN")
        return std::make_unique<KmeansWorkload>();
    if (abbrev == "HOT")
        return std::make_unique<HotspotWorkload>();
    sim::fatal("unknown workload '", abbrev, "'");
}

std::vector<std::string>
irregularWorkloadNames()
{
    return {"XSB", "MVT", "ATX", "NW", "BIC", "GEV"};
}

std::vector<std::string>
regularWorkloadNames()
{
    return {"SSP", "MIS", "CLR", "BCK", "KMN", "HOT"};
}

std::vector<std::string>
allWorkloadNames()
{
    auto names = irregularWorkloadNames();
    for (auto &n : regularWorkloadNames())
        names.push_back(n);
    return names;
}

std::vector<std::string>
motivationWorkloadNames()
{
    return {"MVT", "ATX", "BIC", "GEV"};
}

} // namespace gpuwalk::workload
