#include "workload/pannotia.hh"

#include "workload/patterns.hh"

namespace gpuwalk::workload {

gpu::GpuWorkload
PannotiaWorkload::doGenerate(vm::AddressSpace &as,
                             const WorkloadParams &params)
{
    WorkloadParams scaled = params;
    scaled.computeCycles = baseCompute(params);
    const mem::Addr footprint = scaledFootprintBytes(params);
    // CSR layout: edge (column-index) array dominates, plus row
    // offsets and a per-vertex property array.
    const vm::VaRegion edges = as.allocate("col_idx", footprint / 2);
    const vm::VaRegion offsets =
        as.allocate("row_offsets", footprint / 4);
    const vm::VaRegion props = as.allocate("properties", footprint / 4);

    gpu::GpuWorkload w;
    w.traces.reserve(params.wavefronts);

    const std::uint64_t edge_elems = edges.bytes / 4;
    const std::uint64_t prop_elems = props.bytes / 8;

    for (unsigned wf = 0; wf < params.wavefronts; ++wf) {
        sim::Rng rng(params.seed * 40503ull + wf);
        gpu::WavefrontTrace trace;
        trace.reserve(params.instructionsPerWavefront);

        // Each wavefront walks its own contiguous slice of the edge
        // list (frontier-partitioned work).
        std::uint64_t edge_pos = (std::uint64_t(wf) * edge_elems)
                                 / std::max(1u, params.wavefronts);
        std::uint64_t step = 0;

        while (trace.size() < params.instructionsPerWavefront) {
            // Stream 64 consecutive edge indices: one or two lines,
            // a single page — perfectly coalesced.
            trace.push_back(makeInstr(
                sequentialLanes(edges.base
                                    + (edge_pos
                                       % (edge_elems
                                          - gpu::wavefrontSize))
                                          * 4,
                                4),
                true, jitteredCompute(rng, scaled.computeCycles)));
            edge_pos += gpu::wavefrontSize;

            if (++step % gatherPeriod_ == 0
                && trace.size() < params.instructionsPerWavefront) {
                // Gather neighbour properties: community structure
                // keeps the targets within a window, touching only a
                // handful of (hot) pages.
                const std::uint64_t focus =
                    (edge_pos * prop_elems / edge_elems) % prop_elems;
                trace.push_back(makeInstr(
                    windowedRandomLanes(rng, props, 8, focus,
                                        windowElems_),
                    true, jitteredCompute(rng, scaled.computeCycles)));
            }
            if (step % (gatherPeriod_ * 4) == 0
                && trace.size() < params.instructionsPerWavefront) {
                // Occasional row-offset lookups, also streaming.
                trace.push_back(makeInstr(
                    sequentialLanes(
                        offsets.base
                            + ((edge_pos / 8)
                               % (offsets.bytes / 4
                                  - gpu::wavefrontSize))
                                  * 4,
                        4),
                    true, jitteredCompute(rng, scaled.computeCycles)));
            }
        }
        trace.resize(params.instructionsPerWavefront);
        w.traces.push_back(std::move(trace));
    }
    return w;
}

} // namespace gpuwalk::workload
