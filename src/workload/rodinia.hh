/**
 * @file
 * Rodinia workloads: Back Propagation, K-Means, Hotspot (regular).
 *
 * All three stream dense arrays with unit stride: the coalescer folds
 * each SIMD instruction onto one or two lines of a single page, small
 * hot structures (centroids, weights) stay TLB-resident, and page
 * walks are rare and cheap. Included, like the Pannotia set, to show
 * scheduling does not perturb translation-insensitive applications.
 */

#ifndef GPUWALK_WORKLOAD_RODINIA_HH
#define GPUWALK_WORKLOAD_RODINIA_HH

#include "workload/workload.hh"

namespace gpuwalk::workload {

/** Shared streaming shape of the three Rodinia kernels. */
class RodiniaWorkload : public WorkloadGenerator
{
  public:
    /**
     * @param info Table II row.
     * @param streams Number of arrays streamed together per step
     *        (Hotspot reads three stencil rows, backprop two layers).
     * @param broadcast_period Broadcast a hot scalar structure every
     *        this many steps (0 = never).
     */
    RodiniaWorkload(WorkloadInfo info, unsigned streams,
                    unsigned broadcast_period)
        : WorkloadGenerator(std::move(info)), streams_(streams),
          broadcastPeriod_(broadcast_period)
    {}

  private:
    gpu::GpuWorkload doGenerate(vm::AddressSpace &as,
                                const WorkloadParams &params) override;

    unsigned streams_;
    unsigned broadcastPeriod_;
};

/** Back Propagation: machine learning (108.03 MB). */
class BackpropWorkload : public RodiniaWorkload
{
  public:
    BackpropWorkload()
        : RodiniaWorkload({"BCK", "Machine learning algorithm", 108.03,
                           false},
                          /*streams=*/2, /*broadcast_period=*/4)
    {}
};

/** K-Means: clustering (4.33 MB). */
class KmeansWorkload : public RodiniaWorkload
{
  public:
    KmeansWorkload()
        : RodiniaWorkload({"KMN", "Clustering algorithm", 4.33, false},
                          /*streams=*/1, /*broadcast_period=*/2)
    {}
};

/** Hotspot: processor thermal simulation (12.02 MB). */
class HotspotWorkload : public RodiniaWorkload
{
  public:
    HotspotWorkload()
        : RodiniaWorkload({"HOT",
                           "Processor thermal simulation algorithm",
                           12.02, false},
                          /*streams=*/3, /*broadcast_period=*/0)
    {}
};

} // namespace gpuwalk::workload

#endif // GPUWALK_WORKLOAD_RODINIA_HH
