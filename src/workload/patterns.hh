/**
 * @file
 * Building blocks for lane-address patterns.
 *
 * The coalescer turns these into translation/cache requests, so the
 * only thing that matters about a pattern is which pages and lines
 * its 64 lanes touch:
 *  - strided with stride >= 4 KB: one page per lane (fully divergent);
 *  - sequential small elements: one or two pages total (coalesced);
 *  - broadcast: one page;
 *  - random: as divergent as the region allows, no reuse.
 */

#ifndef GPUWALK_WORKLOAD_PATTERNS_HH
#define GPUWALK_WORKLOAD_PATTERNS_HH

#include <vector>

#include "gpu/instruction.hh"
#include "sim/rng.hh"
#include "vm/address_space.hh"

namespace gpuwalk::workload {

/** lane i -> base + i * stride (column walks, diagonal sweeps). */
std::vector<mem::Addr> stridedLanes(mem::Addr base, mem::Addr stride,
                                    unsigned lanes = gpu::wavefrontSize);

/** lane i -> base + i * elem_bytes (unit-stride streaming). */
std::vector<mem::Addr>
sequentialLanes(mem::Addr base, mem::Addr elem_bytes,
                unsigned lanes = gpu::wavefrontSize);

/** every lane -> addr (scalar/broadcast operand). */
std::vector<mem::Addr>
broadcastLanes(mem::Addr addr, unsigned lanes = gpu::wavefrontSize);

/** lane i -> random element-aligned address within @p region. */
std::vector<mem::Addr>
randomLanes(sim::Rng &rng, const vm::VaRegion &region,
            mem::Addr elem_bytes, unsigned lanes = gpu::wavefrontSize);

/**
 * lane i -> element-aligned address within a window of @p region
 * centred near @p focus_elem (graph-style gathers with community
 * locality). The window is clamped to the region.
 */
std::vector<mem::Addr>
windowedRandomLanes(sim::Rng &rng, const vm::VaRegion &region,
                    mem::Addr elem_bytes, std::uint64_t focus_elem,
                    std::uint64_t window_elems,
                    unsigned lanes = gpu::wavefrontSize);

/** Convenience: wraps lanes into an instruction. */
gpu::SimdMemInstruction
makeInstr(std::vector<mem::Addr> lanes, bool is_load,
          sim::Cycles compute_cycles);

/**
 * Draws a per-instruction compute delay in [base/2, 3*base/2).
 * Real kernels interleave variable amounts of ALU work between
 * memory instructions; without this jitter, identical synthetic
 * wavefronts march in artificial convoys.
 */
sim::Cycles jitteredCompute(sim::Rng &rng, sim::Cycles base);

/**
 * Active lane count for one SIMD instruction: usually the full
 * wavefront, sometimes a partial mask (loop tails, branch masking).
 * @param partial_prob Probability of a partial mask.
 */
unsigned activeLaneCount(sim::Rng &rng, double partial_prob = 0.2);

/** Largest N with N*N*elem_bytes <= footprint_bytes (square matrix). */
std::uint64_t squareDim(mem::Addr footprint_bytes, mem::Addr elem_bytes);

} // namespace gpuwalk::workload

#endif // GPUWALK_WORKLOAD_PATTERNS_HH
