/**
 * @file
 * Workload generator interface.
 *
 * The paper evaluates unmodified OpenCL/HCC applications on gem5; this
 * reproduction substitutes trace generators that emit each benchmark's
 * *memory-instruction-level access pattern* — which is all the
 * translation path ever observes. Each generator reproduces the
 * property the paper keys on: per-instruction page divergence and TLB
 * locality, at the Table II memory footprint.
 */

#ifndef GPUWALK_WORKLOAD_WORKLOAD_HH
#define GPUWALK_WORKLOAD_WORKLOAD_HH

#include <algorithm>
#include <cstdint>
#include <string>

#include "gpu/instruction.hh"
#include "vm/address_space.hh"

namespace gpuwalk::workload {

/** Table II row: identity and footprint of one benchmark. */
struct WorkloadInfo
{
    std::string abbrev;      ///< e.g. "MVT"
    std::string description; ///< Table II description text
    double footprintMB = 0;  ///< Table II memory footprint
    bool irregular = false;  ///< paper's classification

    /**
     * Relative ALU work per memory instruction. Kernels differ widely
     * in arithmetic intensity (XSBench's lookup does dozens of ops per
     * gather; MVT does one multiply-add per element); this scales the
     * base computeCycles so each benchmark's translation demand lands
     * at its natural point relative to walker capacity.
     */
    double computeScale = 1.0;
};

/** Knobs controlling trace generation. */
struct WorkloadParams
{
    /** Total wavefronts (spread round-robin over CUs). */
    unsigned wavefronts = 128;

    /** SIMD memory instructions per wavefront. */
    unsigned instructionsPerWavefront = 48;

    /** RNG seed; identical params produce identical traces. */
    std::uint64_t seed = 42;

    /**
     * Scales each benchmark's Table II footprint (1.0 = paper size).
     * Unit tests use small scales for speed; experiments use 1.0.
     */
    double footprintScale = 1.0;

    /** Compute cycles between memory instructions. */
    sim::Cycles computeCycles = 20;

    /**
     * When positive, overrides the benchmark's own computeScale
     * (arithmetic-intensity calibration experiments).
     */
    double computeScaleOverride = 0.0;

    /**
     * Back every buffer with 2 MB large pages instead of 4 KB base
     * pages (the paper's "why not large pages?" ablation, SVI).
     */
    bool useLargePages = false;
};

/** Base class for the twelve Table II benchmark models. */
class WorkloadGenerator
{
  public:
    explicit WorkloadGenerator(WorkloadInfo info) : info_(std::move(info))
    {}

    virtual ~WorkloadGenerator() = default;

    const WorkloadInfo &info() const { return info_; }

    /**
     * Allocates the benchmark's buffers in @p as (eagerly mapped) and
     * produces per-wavefront instruction traces.
     */
    gpu::GpuWorkload
    generate(vm::AddressSpace &as, const WorkloadParams &params)
    {
        return doGenerate(as, params);
    }

    /**
     * Scaled footprint in bytes under @p params, floored at 1 MB so
     * extreme test scales still leave generators valid regions.
     */
    mem::Addr
    scaledFootprintBytes(const WorkloadParams &params) const
    {
        const auto bytes = static_cast<mem::Addr>(
            info_.footprintMB * 1024.0 * 1024.0 * params.footprintScale);
        return std::max<mem::Addr>(bytes, 1024 * 1024);
    }

    /** Base inter-instruction compute for this benchmark. */
    sim::Cycles
    baseCompute(const WorkloadParams &params) const
    {
        const double scale = params.computeScaleOverride > 0.0
                                 ? params.computeScaleOverride
                                 : info_.computeScale;
        return static_cast<sim::Cycles>(
            static_cast<double>(params.computeCycles) * scale);
    }

  private:
    virtual gpu::GpuWorkload doGenerate(vm::AddressSpace &as,
                                        const WorkloadParams &params) = 0;

    WorkloadInfo info_;
};

} // namespace gpuwalk::workload

#endif // GPUWALK_WORKLOAD_WORKLOAD_HH
